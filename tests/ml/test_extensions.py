"""Tests for repro.ml.extensions — the future-work predictor zoo."""

import numpy as np
import pytest

from repro.ml.extensions import (
    INJECTED_FEATURE_INDEX,
    EwmaPredictor,
    LastValuePredictor,
    PolynomialRidge,
    SgdRidge,
)
from repro.ml.features import NUM_FEATURES
from repro.ml.metrics import nrmse
from repro.ml.ridge import RidgeRegression


def _windows(n=300, seed=0):
    """Synthetic window data: injections follow an AR(1) process."""
    rng = np.random.default_rng(seed)
    X = rng.random((n, NUM_FEATURES)) * 5
    injections = np.zeros(n)
    level = 20.0
    for i in range(n):
        level = 0.8 * level + 0.2 * rng.uniform(0, 40)
        injections[i] = level
    X[:, INJECTED_FEATURE_INDEX] = injections
    # Next-window label: persistent process + noise.
    t = 0.9 * injections + rng.normal(0, 1.0, n)
    return X, t


class TestLastValue:
    def test_predicts_feature_nine(self):
        X, t = _windows()
        model = LastValuePredictor().fit(X, t)
        assert np.array_equal(
            model.predict(X), X[:, INJECTED_FEATURE_INDEX]
        )

    def test_single_row(self):
        X, t = _windows()
        model = LastValuePredictor().fit(X, t)
        assert model.predict(X[0]) == X[0, INJECTED_FEATURE_INDEX]

    def test_fitted_flag(self):
        model = LastValuePredictor()
        assert not model.is_fitted
        model.fit(*_windows(n=10))
        assert model.is_fitted

    def test_decent_on_persistent_process(self):
        X, t = _windows()
        model = LastValuePredictor().fit(X, t)
        assert nrmse(t, model.predict(X)) > 0.3


class TestEwma:
    def test_alpha_one_equals_last_value(self):
        X, t = _windows()
        ewma = EwmaPredictor(alpha=1.0).fit(X, t)
        assert np.allclose(ewma.predict(X), X[:, INJECTED_FEATURE_INDEX])

    def test_smoothing_reduces_variance(self):
        X, t = _windows()
        smooth = EwmaPredictor(alpha=0.2).fit(X, t).predict(X)
        raw = X[:, INJECTED_FEATURE_INDEX]
        assert np.var(np.diff(smooth)) < np.var(np.diff(raw))

    def test_reset_clears_state(self):
        X, t = _windows(n=10)
        ewma = EwmaPredictor(alpha=0.3).fit(X, t)
        first = ewma.predict(X[0])
        ewma.reset()
        assert ewma.predict(X[0]) == first

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            EwmaPredictor(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaPredictor(alpha=1.5)


class TestPolynomialRidge:
    def test_expansion_width(self):
        X, t = _windows()
        model = PolynomialRidge(lam=1.0)
        expanded = model._expand(X)
        k = len(model.interaction_columns)
        assert expanded.shape[1] == NUM_FEATURES + k * (k + 1) // 2

    def test_fits_and_predicts(self):
        X, t = _windows()
        model = PolynomialRidge(lam=1.0).fit(X, t)
        assert model.is_fitted
        assert model.predict(X).shape == t.shape

    def test_single_row_prediction(self):
        X, t = _windows()
        model = PolynomialRidge(lam=1.0).fit(X, t)
        assert np.isscalar(float(model.predict(X[0])))

    def test_captures_interaction_linear_ridge_cannot(self):
        """A pure product target: polynomial ridge wins decisively."""
        rng = np.random.default_rng(1)
        X = rng.random((600, NUM_FEATURES))
        t = 10.0 * X[:, 1] * X[:, 29]
        linear = RidgeRegression(lam=1e-6).fit(X, t)
        poly = PolynomialRidge(lam=1e-6).fit(X, t)
        assert nrmse(t, poly.predict(X)) > nrmse(t, linear.predict(X)) + 0.1

    def test_empty_interaction_columns_rejected(self):
        with pytest.raises(ValueError):
            PolynomialRidge(interaction_columns=())


class TestSgdRidge:
    def test_approaches_closed_form(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(500, 8))
        w = np.arange(8, dtype=float)
        t = X @ w + 2.0
        closed = RidgeRegression(lam=1.0).fit(X, t)
        sgd = SgdRidge(lam=1.0, learning_rate=0.1, epochs=200).fit(X, t)
        closed_pred = closed.predict(X)
        sgd_pred = sgd.predict(X)
        assert np.corrcoef(closed_pred, sgd_pred)[0, 1] > 0.99

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            SgdRidge().predict(np.zeros(8))

    def test_validates_hyper_parameters(self):
        with pytest.raises(ValueError):
            SgdRidge(learning_rate=0.0)
        with pytest.raises(ValueError):
            SgdRidge(lam=-1.0)
        with pytest.raises(ValueError):
            SgdRidge(epochs=0)

    def test_deterministic_given_seed(self):
        X, t = _windows()
        a = SgdRidge(seed=7, epochs=5).fit(X, t).predict(X)
        b = SgdRidge(seed=7, epochs=5).fit(X, t).predict(X)
        assert np.array_equal(a, b)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            SgdRidge().fit(np.zeros((3, 2)), np.zeros(4))


class TestScalerCompatibility:
    def test_extensions_drop_into_ml_scaler(self):
        """Every predictor satisfies the MLPowerScaler interface."""
        from repro.config import MLConfig, PhotonicConfig
        from repro.core.ml_scaling import MLPowerScaler, StateSelector

        X, t = _windows()
        selector = StateSelector(PhotonicConfig(), reservation_window=500)
        for model in (
            LastValuePredictor().fit(X, t),
            EwmaPredictor().fit(X, t),
            PolynomialRidge(lam=1.0).fit(X, t),
            SgdRidge(epochs=5).fit(X, t),
        ):
            scaler = MLPowerScaler(
                model=model, selector=selector, config=MLConfig()
            )
            state = scaler.decide(X[0])
            assert state in (8, 16, 32, 48, 64)
