"""Drift regression over the collective workload family.

The deployed model is fitted on PARSEC-style deployment samples
(:func:`repro.ml.pipeline.deployment_fitted_model`), so its training
scaler records the in-distribution feature baseline.  This suite pins
the separation the lifecycle design promises:

* replaying the same family of traffic keeps every monitor quiet —
  zero drift events on a PARSEC pair deployment;
* phase-structured collective traffic is out-of-distribution — the
  cluster-router monitors trip, and under ``drift_action="retrain"``
  the closed loop refits, promotes, and hot-swaps a replacement whose
  registry id (a content digest) is byte-identical across all three
  cycle engines.
"""

from __future__ import annotations

import dataclasses
import tempfile

import pytest

from repro.config import PearlConfig, SimulationConfig
from repro.ml.lifecycle.registry import ModelRegistry
from repro.ml.pipeline import deployment_fitted_model
from repro.noc.network import PearlNetwork
from repro.noc.router import PowerPolicyKind
from repro.traffic.benchmarks import test_pairs as benchmark_pairs
from repro.traffic.collectives import generate_collective_trace
from repro.traffic.synthetic import generate_pair_trace

SEED = 1
ENGINES = ("reference", "fast", "array")


@pytest.fixture(scope="module")
def model():
    """Deployment-fitted ridge model (two-phase, PARSEC pair 0)."""
    return deployment_fitted_model(seed=SEED)


def _drift_config(action: str) -> PearlConfig:
    config = PearlConfig(
        simulation=SimulationConfig(
            warmup_cycles=500, measure_cycles=8_000, seed=SEED
        )
    ).with_reservation_window(200)
    return config.replace(
        ml=dataclasses.replace(
            config.ml,
            drift_detection=True,
            drift_action=action,
            drift_calibration_windows=8,
            drift_patience=3,
            drift_z_threshold=4.0,
            retrain_min_samples=20,
            retrain_cooldown_windows=10_000,
        )
    )


def _parsec_trace(config: PearlConfig):
    cpu, gpu = benchmark_pairs()[0]
    return generate_pair_trace(
        cpu, gpu, config.architecture, config.simulation.total_cycles, SEED
    )


def _collective_trace(config: PearlConfig, algorithm: str):
    return generate_collective_trace(
        algorithm,
        config.architecture,
        duration=config.simulation.total_cycles,
        seed=SEED,
    )


def test_parsec_deployment_stays_quiet(model):
    """In-distribution replay: no monitor trips, no retraining advice."""
    config = _drift_config("flag")
    network = PearlNetwork(
        config, power_policy=PowerPolicyKind.ML, ml_model=model, seed=SEED
    )
    result = network.run(_parsec_trace(config))
    assert result.drift_events == 0
    assert not result.drift_retraining_recommended


@pytest.mark.parametrize(
    "algorithm", ["allreduce_ring", "halving_doubling", "alltoall"]
)
def test_collective_trips_cluster_monitors(model, algorithm):
    """OOD collective traffic trips the feature-shift watchdogs."""
    config = _drift_config("flag")
    network = PearlNetwork(
        config, power_policy=PowerPolicyKind.ML, ml_model=model, seed=SEED
    )
    result = network.run(_collective_trace(config, algorithm))
    assert result.drift_events >= 8
    assert result.drift_retraining_recommended
    l3 = config.architecture.l3_router_id
    tripped = {
        router.router_id
        for router in network.routers
        if router.ml_scaler is not None
        and router.ml_scaler.drift_monitor is not None
        and router.ml_scaler.drift_monitor.trips
    }
    # The signal comes from the cluster routers; the L3 monitor is
    # residual-only (its feature stream is structurally unlike the
    # training population) and must not be the thing firing here.
    assert len(tripped - {l3}) >= 8


def test_parameter_server_trips_the_host(model):
    """The hotspot pattern concentrates drift on the parameter host."""
    config = _drift_config("flag")
    network = PearlNetwork(
        config, power_policy=PowerPolicyKind.ML, ml_model=model, seed=SEED
    )
    result = network.run(_collective_trace(config, "parameter_server"))
    assert result.drift_events >= 1
    from repro.traffic.collectives import PARAMETER_HOST

    host_monitor = network.routers[PARAMETER_HOST].ml_scaler.drift_monitor
    assert host_monitor is not None and host_monitor.trips


def test_retrain_closes_loop_identically_across_engines(model):
    """drift -> retrain -> promote fires on a collective, same model
    ids (registry content digests) from every cycle engine."""
    ids_by_engine = {}
    for engine in ENGINES:
        config = _drift_config("retrain")
        with tempfile.TemporaryDirectory() as tmp:
            network = PearlNetwork(
                config,
                power_policy=PowerPolicyKind.ML,
                ml_model=model,
                seed=SEED,
                registry=ModelRegistry(tmp),
            )
            result = network.run(
                _collective_trace(config, "allreduce_ring"), engine=engine
            )
        assert result.retrain_events >= 1, engine
        assert len(result.retrained_model_ids) == result.retrain_events
        ids_by_engine[engine] = list(result.retrained_model_ids)
    reference = ids_by_engine["reference"]
    assert ids_by_engine["fast"] == reference
    assert ids_by_engine["array"] == reference


def test_no_retrain_on_parsec(model):
    """The retrain loop never fires on in-distribution traffic."""
    config = _drift_config("retrain")
    with tempfile.TemporaryDirectory() as tmp:
        network = PearlNetwork(
            config,
            power_policy=PowerPolicyKind.ML,
            ml_model=model,
            seed=SEED,
            registry=ModelRegistry(tmp),
        )
        result = network.run(_parsec_trace(config))
    assert result.retrain_events == 0
    assert result.retrained_model_ids == []
