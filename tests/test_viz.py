"""Tests for repro.viz — terminal charts and figure renderers."""

import pytest

from repro.experiments.runner import ExperimentResult
from repro.viz import (
    RENDERERS,
    bar_chart,
    grouped_bar_chart,
    residency_chart,
    series_table,
    sparkline,
)


class TestBarChart:
    def test_contains_labels_and_values(self):
        text = bar_chart({"alpha": 10.0, "beta": 5.0}, title="demo")
        assert "demo" in text
        assert "alpha" in text and "beta" in text
        assert "10" in text

    def test_longest_bar_is_max(self):
        text = bar_chart({"a": 10.0, "b": 5.0}, width=10)
        lines = text.splitlines()
        assert lines[0].count("█") > lines[1].count("█")

    def test_empty_data(self):
        assert bar_chart({}, title="t") == "t"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({"a": -1.0})

    def test_pinned_scale(self):
        half = bar_chart({"a": 50.0}, width=10, max_value=100.0)
        assert half.count("█") == 5

    def test_zero_values_render(self):
        text = bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in text


class TestGroupedBarChart:
    def test_groups_rendered(self):
        text = grouped_bar_chart(
            {"g1": {"x": 1.0}, "g2": {"x": 2.0}}, title="t"
        )
        assert "g1:" in text and "g2:" in text

    def test_shared_scale(self):
        text = grouped_bar_chart(
            {"g1": {"x": 10.0}, "g2": {"x": 5.0}}, width=10
        )
        lines = [l for l in text.splitlines() if "│" in l]
        assert lines[0].count("█") > lines[1].count("█")


class TestSparkline:
    def test_length_matches(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_monotone_levels(self):
        line = sparkline(list(range(8)))
        assert line == "▁▂▃▄▅▆▇█"

    def test_empty(self):
        assert sparkline([]) == ""


class TestResidencyChart:
    def test_legend_percentages(self):
        text = residency_chart({64: 0.25, 32: 0.75}, title="r")
        assert "64WL 25%" in text
        assert "32WL 75%" in text

    def test_idle_residency(self):
        assert "(idle)" in residency_chart({64: 0.0}, title="")

    def test_width_respected(self):
        text = residency_chart({64: 1.0}, width=20)
        bar_line = text.splitlines()[0]
        assert len(bar_line) <= 20


class TestSeriesTable:
    def test_rows_and_sparkline(self):
        text = series_table(
            [1, 2, 3], {"s": [10.0, 20.0, 30.0]}, title="t", x_label="x"
        )
        assert "t" in text
        assert "trend" in text
        assert "30" in text


class TestFigureRenderers:
    def test_all_paper_figures_have_renderers(self):
        assert set(RENDERERS) == {
            "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11"
        }

    def test_fig4_renderer(self):
        result = ExperimentResult(name="fig4")
        result.add_row(pair="FA+DCT", cpu_percent=60.0, gpu_percent=40.0)
        text = RENDERERS["fig4"](result)
        assert "FA+DCT" in text

    def test_fig5_renderer(self):
        result = ExperimentResult(name="fig5")
        result.add_row(
            wavelengths=64,
            pearl_dyn_epb_pj=10.0,
            pearl_fcfs_epb_pj=11.0,
            cmesh_epb_pj=20.0,
        )
        text = RENDERERS["fig5"](result)
        assert "64 WL" in text and "CMESH" in text

    def test_fig8_renderer(self):
        result = ExperimentResult(name="fig8")
        result.add_row(
            config="ML RW500",
            wl64_pct=10.0, wl48_pct=0.0, wl32_pct=60.0,
            wl16_pct=30.0, wl8_pct=0.0,
        )
        text = RENDERERS["fig8"](result)
        assert "ML RW500" in text
        assert "32WL" in text

    def test_fig11_renderer(self):
        result = ExperimentResult(name="fig11")
        for turn_on in (2.0, 4.0):
            result.add_row(
                config="Dyn RW500", turn_on_ns=turn_on, laser_power_w=15.0,
                throughput_flits_per_cycle=5.0,
                throughput_loss_vs_2ns_pct=0.0, stall_cycles=0,
            )
        text = RENDERERS["fig11"](result)
        assert "turn-on ns" in text


class TestRemainingRenderers:
    def test_fig6_renderer(self):
        result = ExperimentResult(name="fig6")
        result.add_row(
            config="64WL", throughput_flits_per_cycle=5.0,
            throughput_loss_pct=0.0,
        )
        result.add_row(
            config="Dyn RW500", throughput_flits_per_cycle=4.9,
            throughput_loss_pct=2.0,
        )
        text = RENDERERS["fig6"](result)
        assert "Dyn RW500" in text and "Fig.6" in text

    def test_fig7_renderer(self):
        result = ExperimentResult(name="fig7")
        result.add_row(config="64WL", laser_power_w=27.8, power_savings_pct=0.0)
        text = RENDERERS["fig7"](result)
        assert "27.8" in text

    def test_fig9_renderer(self):
        result = ExperimentResult(name="fig9")
        result.add_row(
            config="CMESH", throughput_flits_per_cycle=3.5,
            gain_vs_cmesh_pct=0.0,
        )
        text = RENDERERS["fig9"](result)
        assert "CMESH" in text

    def test_fig10_renderer(self):
        result = ExperimentResult(name="fig10")
        result.add_row(
            window="ML RW500", throughput_flits_per_cycle=5.0,
            loss_vs_static_pct=1.0,
        )
        text = RENDERERS["fig10"](result)
        assert "ML RW500" in text
