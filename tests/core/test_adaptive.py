"""Tests for repro.core.adaptive — the self-tuning reactive scaler."""

import pytest

from repro.config import PhotonicConfig, PowerScalingConfig
from repro.core.adaptive import AdaptiveReactiveScaler
from repro.core.wavelength import WavelengthLadder


def _scaler(**kwargs):
    return AdaptiveReactiveScaler(
        PowerScalingConfig(reservation_window=100),
        WavelengthLadder(PhotonicConfig()),
        **kwargs,
    )


def _run_windows(scaler, occupancy, windows):
    states = []
    for _ in range(windows):
        for _ in range(100):
            scaler.observe(occupancy)
        states.append(scaler.close_window())
    return states


class TestAdaptation:
    def test_starts_at_configured_thresholds(self):
        scaler = _scaler()
        assert scaler.threshold_scale == 1.0
        assert scaler.current_thresholds() == PowerScalingConfig().thresholds()

    def test_pressure_lowers_thresholds(self):
        scaler = _scaler()
        _run_windows(scaler, occupancy=0.5, windows=5)
        assert scaler.threshold_scale < 1.0

    def test_idleness_raises_thresholds(self):
        scaler = _scaler()
        _run_windows(scaler, occupancy=0.005, windows=5)
        assert scaler.threshold_scale > 1.0

    def test_in_band_occupancy_leaves_scale_alone(self):
        scaler = _scaler(target_band=(0.02, 0.15))
        _run_windows(scaler, occupancy=0.08, windows=5)
        assert scaler.threshold_scale == 1.0

    def test_scale_bounded(self):
        scaler = _scaler(scale_bounds=(0.5, 2.0))
        _run_windows(scaler, occupancy=0.9, windows=50)
        assert scaler.threshold_scale >= 0.5
        scaler2 = _scaler(scale_bounds=(0.5, 2.0))
        _run_windows(scaler2, occupancy=0.0, windows=50)
        assert scaler2.threshold_scale <= 2.0

    def test_thresholds_stay_descending(self):
        scaler = _scaler()
        _run_windows(scaler, occupancy=0.9, windows=10)
        thresholds = scaler.current_thresholds()
        assert list(thresholds) == sorted(thresholds, reverse=True)


class TestBehaviouralEffect:
    def test_adapted_scaler_upgrades_sooner_under_pressure(self):
        """After sustained pressure the same occupancy maps higher."""
        adaptive = _scaler()
        _run_windows(adaptive, occupancy=0.5, windows=8)
        static = _scaler()
        # A mid occupancy that the virgin thresholds map to 48 WL.
        assert adaptive.select_state(0.12) >= static.select_state(0.12)

    def test_adapted_scaler_saves_more_when_idle(self):
        adaptive = _scaler()
        _run_windows(adaptive, occupancy=0.001, windows=8)
        # The raised thresholds map a small occupancy lower than before.
        static = _scaler()
        assert adaptive.select_state(0.03) <= static.select_state(0.03)

    def test_history_recorded(self):
        scaler = _scaler()
        _run_windows(scaler, occupancy=0.5, windows=3)
        assert len(scaler.scale_history) == 3


class TestValidation:
    def test_invalid_band(self):
        with pytest.raises(ValueError):
            _scaler(target_band=(0.5, 0.2))

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            _scaler(adjust_factor=1.0)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            _scaler(scale_bounds=(2.0, 4.0))
