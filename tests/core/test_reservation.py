"""Tests for repro.core.reservation — R-SWMR reservation arithmetic."""

import math

import pytest

from repro.core.reservation import (
    Reservation,
    ReservationChannel,
    reservation_packet_bits,
    reservation_wavelengths,
)


class TestReservationPacketBits:
    def test_paper_configuration(self):
        """16 routers, 2+2 packet types, 5 allocation levels, 1 L3."""
        bits = reservation_packet_bits(16)
        assert bits == math.ceil(math.log2(2 * 16 * 2 * 2 * 5 * 1))

    def test_monotone_in_routers(self):
        assert reservation_packet_bits(32) >= reservation_packet_bits(16)

    def test_monotone_in_allocation_levels(self):
        assert reservation_packet_bits(
            16, allocation_levels=9
        ) >= reservation_packet_bits(16, allocation_levels=5)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_nonpositive_routers(self, bad):
        with pytest.raises(ValueError):
            reservation_packet_bits(bad)

    def test_rejects_nonpositive_types(self):
        with pytest.raises(ValueError):
            reservation_packet_bits(16, cpu_packet_types=0)


class TestReservationWavelengths:
    def test_single_cycle_broadcast(self):
        """At 16 Gb/s per WL and 2 GHz, one WL carries 8 bits/cycle."""
        assert reservation_wavelengths(10) == 2
        assert reservation_wavelengths(8) == 1

    def test_rejects_nonpositive_bits(self):
        with pytest.raises(ValueError):
            reservation_wavelengths(0)


class TestReservationChannel:
    def test_visible_after_latency(self):
        channel = ReservationChannel(latency_cycles=2)
        res = Reservation(0, 5, 0.75, 0.25, issue_cycle=10)
        channel.broadcast(res)
        assert channel.ready(0, 11) is None
        assert channel.ready(0, 12) is res

    def test_zero_latency_immediate(self):
        channel = ReservationChannel(latency_cycles=0)
        res = Reservation(0, 5, 0.5, 0.5, issue_cycle=0)
        channel.broadcast(res)
        assert channel.ready(0, 0) is res

    def test_consume_removes(self):
        channel = ReservationChannel()
        channel.broadcast(Reservation(0, 5, 0.5, 0.5, issue_cycle=0))
        channel.consume(0)
        assert channel.ready(0, 100) is None

    def test_sources_independent(self):
        channel = ReservationChannel()
        channel.broadcast(Reservation(0, 5, 0.5, 0.5, issue_cycle=0))
        channel.broadcast(Reservation(1, 6, 0.5, 0.5, issue_cycle=0))
        assert channel.ready(0, 5).destination == 5
        assert channel.ready(1, 5).destination == 6

    def test_broadcast_count(self):
        channel = ReservationChannel()
        for i in range(3):
            channel.broadcast(Reservation(i, i + 1, 0.5, 0.5, issue_cycle=0))
        assert channel.broadcast_count == 3

    def test_reservation_validation(self):
        with pytest.raises(ValueError):
            Reservation(3, 3, 0.5, 0.5, issue_cycle=0)
        with pytest.raises(ValueError):
            Reservation(0, 1, 0.5, 0.5, issue_cycle=-1)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            ReservationChannel(latency_cycles=-1)
