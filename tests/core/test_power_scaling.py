"""Tests for repro.core.power_scaling — LaserBank and the reactive scaler."""

import pytest

from repro.config import PhotonicConfig, PowerScalingConfig
from repro.core.power_scaling import (
    LaserBank,
    ReactivePowerScaler,
    StaticPowerPolicy,
)
from repro.core.wavelength import WavelengthLadder


def _bank(turn_on_ns=2.0, initial=None):
    return LaserBank(
        PhotonicConfig(laser_turn_on_ns=turn_on_ns),
        network_frequency_ghz=2.0,
        initial_state=initial,
    )


class TestLaserBank:
    def test_starts_at_max_state(self):
        assert _bank().state == 64

    def test_custom_initial_state(self):
        assert _bank(initial=16).state == 16

    def test_unknown_initial_state_rejected(self):
        with pytest.raises(ValueError):
            _bank(initial=24)

    def test_scale_down_immediate(self):
        bank = _bank()
        bank.request_state(16)
        assert bank.state == 16
        assert bank.can_transmit

    def test_scale_up_stabilizes(self):
        """2 ns at 2 GHz = 4 dark cycles before the new state is live."""
        bank = _bank(initial=16)
        bank.request_state(64)
        assert bank.state == 16
        assert bank.is_stabilizing
        assert not bank.can_transmit
        for _ in range(4):
            bank.tick()
        assert bank.state == 64
        assert bank.can_transmit

    def test_zero_turn_on_is_instant(self):
        bank = _bank(turn_on_ns=0.0, initial=16)
        bank.request_state(64)
        assert bank.state == 64
        assert bank.can_transmit

    def test_same_state_request_is_noop(self):
        bank = _bank()
        bank.request_state(64)
        assert bank.transitions == 0

    def test_unknown_state_rejected(self):
        with pytest.raises(ValueError):
            _bank().request_state(100)

    def test_stall_cycles_counted(self):
        bank = _bank(turn_on_ns=2.0, initial=8)
        bank.request_state(64)
        for _ in range(10):
            bank.tick()
        assert bank.stall_cycles == 4

    def test_power_during_stabilization_is_target_state(self):
        """Newly lit lasers draw power while warming up."""
        bank = _bank(initial=8)
        bank.request_state(64)
        bank.tick()
        cycle_s = 0.5e-9
        assert bank.energy_j == pytest.approx(1.16 * cycle_s)

    def test_energy_integration_static(self):
        bank = _bank()
        for _ in range(100):
            bank.tick()
        assert bank.mean_power_w() == pytest.approx(1.16)

    def test_mean_power_mixed_states(self):
        bank = _bank(turn_on_ns=0.0)
        for _ in range(50):
            bank.tick()
        bank.request_state(8)
        for _ in range(50):
            bank.tick()
        assert bank.mean_power_w() == pytest.approx((1.16 + 0.145) / 2)

    def test_residency_sums_to_one(self):
        bank = _bank(turn_on_ns=0.0)
        for state in (64, 32, 16, 8, 64):
            bank.request_state(state)
            for _ in range(10):
                bank.tick()
        assert sum(bank.residency().values()) == pytest.approx(1.0)

    def test_longer_turn_on_more_stalls(self):
        short, long = _bank(2.0, initial=8), _bank(32.0, initial=8)
        for bank in (short, long):
            bank.request_state(64)
            for _ in range(80):
                bank.tick()
        assert long.stall_cycles > short.stall_cycles


def _scaler(window=100, use_8wl=True, router_id=0):
    config = PowerScalingConfig(reservation_window=window, use_8wl=use_8wl)
    return ReactivePowerScaler(
        config, WavelengthLadder(PhotonicConfig()), router_id=router_id
    )


class TestReactivePowerScaler:
    def test_threshold_mapping(self):
        scaler = _scaler()
        assert scaler.select_state(0.50) == 64
        assert scaler.select_state(0.15) == 48
        assert scaler.select_state(0.07) == 32
        assert scaler.select_state(0.03) == 16
        assert scaler.select_state(0.001) == 8

    def test_no_8wl_floors_at_16(self):
        scaler = _scaler(use_8wl=False)
        assert scaler.select_state(0.0) == 16

    def test_close_window_uses_mean(self):
        scaler = _scaler()
        for occ in (0.4, 0.6):
            scaler.observe(occ)
        assert scaler.close_window() == 64

    def test_close_window_resets_accumulator(self):
        scaler = _scaler()
        scaler.observe(1.0)
        scaler.close_window()
        # A fresh empty window reads as idle.
        assert scaler.close_window() == 8

    def test_window_boundary_cadence(self):
        scaler = _scaler(window=100, router_id=0)
        boundaries = [c for c in range(500) if scaler.window_boundary(c)]
        assert boundaries == [0, 100, 200, 300, 400]

    def test_stagger_offsets_boundaries(self):
        scaler = _scaler(window=100, router_id=3)
        assert scaler.window_boundary(30)
        assert not scaler.window_boundary(0)

    def test_observe_validates_range(self):
        with pytest.raises(ValueError):
            _scaler().observe(1.5)

    def test_decisions_recorded(self):
        scaler = _scaler()
        scaler.observe(0.5)
        scaler.close_window()
        scaler.observe(0.001)
        scaler.close_window()
        assert scaler.decisions == [64, 8]

    def test_monotone_occupancy_to_state(self):
        """Higher mean occupancy never selects a lower state."""
        scaler = _scaler()
        occupancies = [i / 100 for i in range(101)]
        states = [scaler.select_state(o) for o in occupancies]
        assert states == sorted(states)


class TestStaticPowerPolicy:
    def test_never_reconfigures(self):
        ladder = WavelengthLadder(PhotonicConfig())
        policy = StaticPowerPolicy(64, ladder)
        assert not any(policy.window_boundary(c) for c in range(1000))
        assert policy.close_window() == 64

    def test_rejects_unknown_state(self):
        with pytest.raises(ValueError):
            StaticPowerPolicy(7, WavelengthLadder(PhotonicConfig()))
