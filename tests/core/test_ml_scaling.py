"""Tests for repro.core.ml_scaling — Eq. 7 selection and the scaler."""

import numpy as np
import pytest

from repro.config import MLConfig, PhotonicConfig
from repro.core.ml_scaling import MLPowerScaler, StateSelector
from repro.ml.features import NUM_FEATURES
from repro.ml.ridge import RidgeRegression


def _selector(window=500, allow_8wl=True, headroom=1.0, multiplier=1.0):
    return StateSelector(
        PhotonicConfig(),
        reservation_window=window,
        avg_packet_flits=2.0,
        allow_8wl=allow_8wl,
        capacity_multiplier=multiplier,
        headroom=headroom,
    )


def _fitted_model(slope=1.0):
    """A trivially fitted ridge model: y ~= slope * x0."""
    rng = np.random.default_rng(0)
    X = rng.random((200, NUM_FEATURES))
    y = slope * X[:, 0]
    return RidgeRegression(lam=0.01).fit(X, y)


class TestStateSelector:
    def test_capacity_monotone_in_state(self):
        sel = _selector()
        capacities = [sel.window_capacity_packets(s) for s in (8, 16, 32, 48, 64)]
        assert capacities == sorted(capacities)

    def test_window_capacity_values(self):
        sel = _selector(window=500)
        assert sel.window_capacity_flits(64) == pytest.approx(250)
        assert sel.window_capacity_flits(16) == pytest.approx(62.5)

    def test_zero_demand_selects_lowest(self):
        assert _selector().state_for_packets(0.0) == 8

    def test_zero_demand_without_8wl(self):
        assert _selector(allow_8wl=False).state_for_packets(0.0) == 16

    def test_huge_demand_selects_max(self):
        assert _selector().state_for_packets(1e9) == 64

    def test_negative_prediction_clamped(self):
        assert _selector().state_for_packets(-5.0) == 8

    def test_selection_monotone_in_demand(self):
        sel = _selector()
        states = [sel.state_for_packets(d) for d in range(0, 300, 5)]
        assert states == sorted(states)

    def test_headroom_is_conservative(self):
        """More headroom never selects a lower state."""
        lean, safe = _selector(headroom=1.0), _selector(headroom=2.0)
        for demand in range(0, 200, 10):
            assert safe.state_for_packets(demand) >= lean.state_for_packets(
                demand
            )

    def test_capacity_multiplier_scales(self):
        single, banked = _selector(), _selector(multiplier=8.0)
        assert banked.window_capacity_packets(64) == pytest.approx(
            8 * single.window_capacity_packets(64)
        )

    def test_candidate_states_order(self):
        assert _selector().candidate_states() == [8, 16, 32, 48, 64]
        assert _selector(allow_8wl=False).candidate_states() == [16, 32, 48, 64]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            _selector(window=0)
        with pytest.raises(ValueError):
            StateSelector(PhotonicConfig(), 500, avg_packet_flits=0)
        with pytest.raises(ValueError):
            StateSelector(PhotonicConfig(), 500, headroom=0.5)
        with pytest.raises(ValueError):
            StateSelector(PhotonicConfig(), 500, capacity_multiplier=0)


class TestMLPowerScaler:
    def _scaler(self, router_id=0):
        return MLPowerScaler(
            model=_fitted_model(),
            selector=_selector(),
            config=MLConfig(reservation_window=500),
            router_id=router_id,
        )

    def test_requires_fitted_model(self):
        with pytest.raises(ValueError):
            MLPowerScaler(
                model=RidgeRegression(),
                selector=_selector(),
                config=MLConfig(),
            )

    def test_decide_records_history(self):
        scaler = self._scaler()
        state = scaler.decide(np.zeros(NUM_FEATURES))
        assert state in (8, 16, 32, 48, 64)
        assert len(scaler.predictions) == 1
        assert scaler.decisions == [state]

    def test_decide_validates_feature_count(self):
        with pytest.raises(ValueError):
            self._scaler().decide(np.zeros(5))

    def test_labels_lag_one_window(self):
        """record_label at boundary k stores the label for window k-1."""
        scaler = self._scaler()
        scaler.record_label(10)
        assert scaler.labels == []
        scaler.record_label(20)
        assert scaler.labels == [10.0]

    def test_aligned_history_truncates(self):
        scaler = self._scaler()
        for i in range(3):
            scaler.record_label(i)
            scaler.decide(np.zeros(NUM_FEATURES))
        targets, predictions = scaler.aligned_history()
        assert targets.shape == predictions.shape

    def test_window_boundary_stagger(self):
        scaler = self._scaler(router_id=2)
        assert scaler.window_boundary(20)
        assert not scaler.window_boundary(0)
