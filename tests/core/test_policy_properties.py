"""Property tests for the PROTEUS and D3NOC adaptation policies.

Two invariants hold by construction and are pinned here so refactors
cannot silently lose them (see ``docs/policies.md``):

* **PROTEUS monotonicity** — a strictly worse optical loss budget (or a
  strictly smaller laser budget) never selects a *higher* wavelength
  state at equal demand: required mW per wavelength is monotone in loss
  dB, so the loss cap can only fall.
* **D3NOC conservation** — however the reconfigurer pins the DBA split,
  the wavelengths granted to CPU plus GPU never exceed the surviving
  pool, the two shares are disjoint, and no wavelength on a link-down
  ring is ever allocated.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DBAConfig, PhotonicConfig, PowerScalingConfig
from repro.core.d3noc import D3nocReconfigurer
from repro.core.dba import DynamicBandwidthAllocator, remap_wavelengths
from repro.core.ml_scaling import StateSelector
from repro.core.proteus import ProteusPowerScaler, loss_capped_state
from repro.core.wavelength import WavelengthLadder, wavelengths_for_share
from repro.ml.features import NUM_FEATURES
from repro.noc.packet import CoreType
from repro.noc.photonic import LinkBudget

LADDER = WavelengthLadder(PhotonicConfig())


def _budget(loss_db: float) -> LinkBudget:
    return LinkBudget(loss_db=loss_db, receiver_sensitivity_dbm=-20.0)


def _scaler(loss_db: float, budget_mw: float, use_8wl: bool):
    return ProteusPowerScaler(
        PowerScalingConfig(use_8wl=use_8wl),
        LADDER,
        _budget(loss_db),
        laser_budget_mw=budget_mw,
    )


class TestProteusMonotonicity:
    @given(
        loss_db=st.floats(min_value=0.5, max_value=40.0),
        extra_db=st.floats(min_value=0.01, max_value=20.0),
        budget_mw=st.floats(min_value=0.1, max_value=200.0),
        use_8wl=st.booleans(),
    )
    @settings(max_examples=200, deadline=None)
    def test_worse_loss_never_raises_the_cap(
        self, loss_db, extra_db, budget_mw, use_8wl
    ):
        better = loss_capped_state(
            _budget(loss_db), LADDER, budget_mw, use_8wl=use_8wl
        )
        worse = loss_capped_state(
            _budget(loss_db + extra_db), LADDER, budget_mw, use_8wl=use_8wl
        )
        assert worse <= better

    @given(
        loss_db=st.floats(min_value=0.5, max_value=40.0),
        budget_mw=st.floats(min_value=0.1, max_value=200.0),
        extra_mw=st.floats(min_value=0.01, max_value=100.0),
        use_8wl=st.booleans(),
    )
    @settings(max_examples=200, deadline=None)
    def test_bigger_laser_budget_never_lowers_the_cap(
        self, loss_db, budget_mw, extra_mw, use_8wl
    ):
        small = loss_capped_state(
            _budget(loss_db), LADDER, budget_mw, use_8wl=use_8wl
        )
        large = loss_capped_state(
            _budget(loss_db), LADDER, budget_mw + extra_mw, use_8wl=use_8wl
        )
        assert large >= small

    @given(
        loss_db=st.floats(min_value=0.5, max_value=40.0),
        extra_db=st.floats(min_value=0.01, max_value=20.0),
        budget_mw=st.floats(min_value=0.1, max_value=200.0),
        occupancy=st.floats(min_value=0.0, max_value=1.0),
        use_8wl=st.booleans(),
    )
    @settings(max_examples=100, deadline=None)
    def test_worse_budget_never_selects_higher_state_at_equal_demand(
        self, loss_db, extra_db, budget_mw, occupancy, use_8wl
    ):
        """The full scaler: demand fixed, loss strictly worse -> the
        selected state cannot rise."""
        better = _scaler(loss_db, budget_mw, use_8wl)
        worse = _scaler(loss_db + extra_db, budget_mw, use_8wl)
        assert worse.select_state(occupancy) <= better.select_state(occupancy)
        # Both saw the identical demand proposal; only the cap differed.
        assert worse.proposed == better.proposed

    @given(
        loss_db=st.floats(min_value=0.5, max_value=40.0),
        budget_mw=st.floats(min_value=0.1, max_value=200.0),
        occupancy=st.floats(min_value=0.0, max_value=1.0),
        use_8wl=st.booleans(),
    )
    @settings(max_examples=100, deadline=None)
    def test_selection_stays_on_the_allowed_ladder(
        self, loss_db, budget_mw, occupancy, use_8wl
    ):
        scaler = _scaler(loss_db, budget_mw, use_8wl)
        state = scaler.select_state(occupancy)
        allowed = (
            LADDER.states if use_8wl else LADDER.states_without_lowest()
        )
        assert state in allowed
        assert state <= scaler.max_state


def _reconfigurer(window=200):
    return D3nocReconfigurer(
        StateSelector(PhotonicConfig(), reservation_window=window),
        DBAConfig(),
    )


def _snapshot(cpu_util: float, gpu_util: float) -> np.ndarray:
    snap = np.zeros(NUM_FEATURES)
    snap[1] = cpu_util
    snap[3] = gpu_util
    return snap


@st.composite
def window_histories(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    return [
        (
            draw(st.floats(min_value=0.0, max_value=400.0)),
            draw(st.floats(min_value=0.0, max_value=1.0)),
            draw(st.floats(min_value=0.0, max_value=1.0)),
        )
        for _ in range(n)
    ]


class TestD3nocConservation:
    @given(
        history=window_histories(),
        down=st.sets(st.integers(min_value=0, max_value=63), max_size=48),
    )
    @settings(max_examples=150, deadline=None)
    def test_pinned_split_never_allocates_downed_rings(self, history, down):
        """Drive a reconfigurer through random windows, pin each split on
        a real allocator, and remap over the surviving rings: the CPU and
        GPU shares are disjoint, within the pool, and never touch a ring
        the fault layer took down."""
        recon = _reconfigurer()
        allocator = DynamicBandwidthAllocator(DBAConfig())
        surviving = tuple(sorted(set(range(64)) - down))
        for label, cpu_util, gpu_util in history:
            state, split = recon.close_window(
                label, _snapshot(cpu_util, gpu_util)
            )
            allocator.pin_split(split)
            assert allocator.pinned_label == split
            allocation = allocator.allocate_from_buffers(None)
            assigned = remap_wavelengths(allocation, surviving)
            cpu = set(assigned[CoreType.CPU])
            gpu = set(assigned[CoreType.GPU])
            assert not cpu & gpu
            assert len(cpu) + len(gpu) <= len(surviving)
            assert cpu <= set(surviving) and gpu <= set(surviving)
            assert not cpu & down and not gpu & down

    @given(history=window_histories())
    @settings(max_examples=150, deadline=None)
    def test_share_wavelengths_never_exceed_the_state(self, history):
        recon = _reconfigurer()
        allocator = DynamicBandwidthAllocator(DBAConfig())
        for label, cpu_util, gpu_util in history:
            state, split = recon.close_window(
                label, _snapshot(cpu_util, gpu_util)
            )
            allocator.pin_split(split)
            allocation = allocator.allocate_from_buffers(None)
            total = wavelengths_for_share(
                state, allocation.cpu_fraction
            ) + wavelengths_for_share(state, allocation.gpu_fraction)
            assert total <= state

    @given(
        history=window_histories(),
        max_state=st.sampled_from([8, 16, 32, 48, 64]),
    )
    @settings(max_examples=100, deadline=None)
    def test_fault_cap_bounds_the_state(self, history, max_state):
        """With a fault-derived cap every decision stays at or under it
        (the cap is how link-down rings shrink the usable ladder)."""
        recon = _reconfigurer()
        for label, cpu_util, gpu_util in history:
            state, _ = recon.close_window(
                label, _snapshot(cpu_util, gpu_util), max_state=max_state
            )
            assert state <= max_state

    @given(history=window_histories())
    @settings(max_examples=100, deadline=None)
    def test_ewma_bounded_by_observed_labels(self, history):
        recon = _reconfigurer()
        labels = []
        for label, cpu_util, gpu_util in history:
            labels.append(label)
            recon.close_window(label, _snapshot(cpu_util, gpu_util))
            assert (
                min(labels) - 1e-9
                <= recon.demand_ewma
                <= max(labels) + 1e-9
            )

    def test_unknown_split_label_rejected(self):
        allocator = DynamicBandwidthAllocator(DBAConfig())
        with pytest.raises(ValueError):
            allocator.pin_split("most_cpu")

    def test_unpin_restores_combinational_decisions(self):
        allocator = DynamicBandwidthAllocator(DBAConfig())
        allocator.pin_split("all_gpu")
        assert allocator.pinned_label == "all_gpu"
        allocator.pin_split(None)
        assert allocator.pinned is None
