"""Tests for repro.core.dba — Algorithm 1 steps 1-5."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DBAConfig
from repro.core.dba import DynamicBandwidthAllocator, FCFSAllocator, OccupancySample
from repro.noc.buffer import PartitionedBuffer
from repro.noc.packet import CacheLevel, CoreType, make_request


@pytest.fixture
def dba():
    return DynamicBandwidthAllocator(DBAConfig())


class TestAlgorithmBranches:
    def test_step_3a_gpu_idle(self, dba):
        """GPU empty, CPU busy: CPU gets the whole link."""
        alloc = dba.allocate(OccupancySample(cpu=0.5, gpu=0.0))
        assert alloc.cpu_fraction == 1.0
        assert alloc.gpu_fraction == 0.0

    def test_step_3b_cpu_idle(self, dba):
        alloc = dba.allocate(OccupancySample(cpu=0.0, gpu=0.5))
        assert alloc.gpu_fraction == 1.0
        assert alloc.cpu_fraction == 0.0

    def test_step_3c_light_gpu(self, dba):
        """GPU under its 6% bound: CPU 75 / GPU 25."""
        alloc = dba.allocate(OccupancySample(cpu=0.5, gpu=0.05))
        assert alloc.cpu_fraction == pytest.approx(0.75)
        assert alloc.gpu_fraction == pytest.approx(0.25)

    def test_step_3d_light_cpu(self, dba):
        """CPU under its 16% bound (GPU above 6%): CPU 25 / GPU 75."""
        alloc = dba.allocate(OccupancySample(cpu=0.10, gpu=0.50))
        assert alloc.cpu_fraction == pytest.approx(0.25)
        assert alloc.gpu_fraction == pytest.approx(0.75)

    def test_step_3e_both_heavy(self, dba):
        alloc = dba.allocate(OccupancySample(cpu=0.5, gpu=0.5))
        assert alloc.cpu_fraction == alloc.gpu_fraction == 0.5

    def test_both_idle_falls_through_to_step_3c(self, dba):
        """With both sides idle neither 3a nor 3b fires; step 3c gives
        the latency-sensitive CPU the 75% share (irrelevant in practice
        since nothing is queued, but it is what Algorithm 1 computes)."""
        alloc = dba.allocate(OccupancySample(cpu=0.0, gpu=0.0))
        assert alloc.cpu_fraction == pytest.approx(0.75)
        assert alloc.gpu_fraction == pytest.approx(0.25)

    def test_cpu_precedence_at_boundary(self, dba):
        """Step 3c is checked before 3d: light GPU wins CPU the 75%."""
        alloc = dba.allocate(OccupancySample(cpu=0.05, gpu=0.03))
        assert alloc.cpu_fraction == pytest.approx(0.75)

    def test_finer_granularity_changes_splits(self):
        dba = DynamicBandwidthAllocator(DBAConfig(bandwidth_step=0.125))
        alloc = dba.allocate(OccupancySample(cpu=0.5, gpu=0.05))
        assert alloc.cpu_fraction == pytest.approx(0.875)
        assert alloc.gpu_fraction == pytest.approx(0.125)

    @given(
        cpu=st.floats(min_value=0.0, max_value=1.0),
        gpu=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_allocation_always_work_conserving(self, cpu, gpu):
        """Whatever the occupancy, the full link is always allocated."""
        dba = DynamicBandwidthAllocator(DBAConfig())
        alloc = dba.allocate(OccupancySample(cpu=cpu, gpu=gpu))
        assert alloc.cpu_fraction + alloc.gpu_fraction == pytest.approx(1.0)

    @given(
        cpu=st.floats(min_value=0.001, max_value=1.0),
        gpu=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_busy_cpu_never_starved(self, cpu, gpu):
        """A CPU with queued packets always receives some bandwidth."""
        dba = DynamicBandwidthAllocator(DBAConfig())
        alloc = dba.allocate(OccupancySample(cpu=cpu, gpu=gpu))
        assert alloc.cpu_fraction > 0.0


class TestBufferIntegration:
    def test_sample_reads_buffers(self, dba):
        buffers = PartitionedBuffer(10, 10)
        buffers.push(make_request(0, 1, CoreType.CPU, CacheLevel.CPU_L2_DOWN))
        sample = dba.sample(buffers)
        assert sample.cpu == pytest.approx(0.1)
        assert sample.gpu == 0.0

    def test_allocate_from_buffers(self, dba):
        buffers = PartitionedBuffer(10, 10)
        buffers.push(make_request(0, 1, CoreType.CPU, CacheLevel.CPU_L2_DOWN))
        alloc = dba.allocate_from_buffers(buffers)
        assert alloc.cpu_fraction == 1.0


class TestOccupancySample:
    def test_combined(self):
        assert OccupancySample(cpu=0.4, gpu=0.2).combined == pytest.approx(0.3)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            OccupancySample(cpu=1.5, gpu=0.0)


class TestFCFS:
    def test_always_even(self):
        fcfs = FCFSAllocator(DBAConfig())
        for cpu, gpu in [(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (0.7, 0.7)]:
            alloc = fcfs.allocate(OccupancySample(cpu=cpu, gpu=gpu))
            assert alloc.cpu_fraction == alloc.gpu_fraction == 0.5

    def test_allocate_from_buffers_static(self):
        fcfs = FCFSAllocator(DBAConfig())
        buffers = PartitionedBuffer(10, 10)
        alloc = fcfs.allocate_from_buffers(buffers)
        assert alloc.cpu_fraction == 0.5
