"""Property-based invariants of the DBA and power-scaling algorithms.

Three families of properties the paper's algorithms must satisfy on
*every* input, not just the hand-picked examples of the unit tests:

* Algorithm 1's bandwidth splits always come from the configured step
  ladder and always hand out exactly the whole link;
* the reactive scaler's state choice is monotone in the window-mean
  occupancy;
* Eq. 7 never selects an infeasible wavelength state while a feasible
  one exists, and always selects the cheapest feasible one.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DBAConfig, PhotonicConfig, PowerScalingConfig
from repro.core.dba import DynamicBandwidthAllocator, OccupancySample
from repro.core.ml_scaling import StateSelector
from repro.core.power_scaling import ReactivePowerScaler
from repro.core.wavelength import WavelengthLadder, wavelengths_for_share

occupancies = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)


class TestDbaSplitProperties:
    @given(cpu=occupancies, gpu=occupancies)
    @settings(max_examples=200, deadline=None)
    def test_fractions_on_quarter_ladder(self, cpu, gpu):
        """Default 25% steps only ever produce {0, 25, 50, 75, 100}%."""
        allocator = DynamicBandwidthAllocator(DBAConfig())
        allocation = allocator.allocate(OccupancySample(cpu=cpu, gpu=gpu))
        ladder = {0.0, 0.25, 0.5, 0.75, 1.0}
        assert allocation.cpu_fraction in ladder
        assert allocation.gpu_fraction in ladder

    @given(cpu=occupancies, gpu=occupancies)
    @settings(max_examples=200, deadline=None)
    def test_fractions_always_sum_to_whole_link(self, cpu, gpu):
        allocator = DynamicBandwidthAllocator(DBAConfig())
        allocation = allocator.allocate(OccupancySample(cpu=cpu, gpu=gpu))
        assert allocation.cpu_fraction + allocation.gpu_fraction == 1.0

    @given(
        cpu=occupancies,
        gpu=occupancies,
        step=st.sampled_from([0.25, 0.125, 0.0625]),
    )
    @settings(max_examples=200, deadline=None)
    def test_step_granularity_respected(self, cpu, gpu, step):
        """Non-default steps keep the {0, step, 1/2, 1-step, 1} ladder."""
        allocator = DynamicBandwidthAllocator(DBAConfig(bandwidth_step=step))
        allocation = allocator.allocate(OccupancySample(cpu=cpu, gpu=gpu))
        ladder = {0.0, step, 0.5, 1.0 - step, 1.0}
        assert allocation.cpu_fraction in ladder
        assert allocation.gpu_fraction in ladder
        assert allocation.cpu_fraction + allocation.gpu_fraction == 1.0

    @given(
        cpu=occupancies,
        gpu=occupancies,
        state=st.sampled_from(PhotonicConfig().wavelength_states),
    )
    @settings(max_examples=200, deadline=None)
    def test_wavelength_shares_sum_to_link_width(self, cpu, gpu, state):
        """The CPU and GPU wavelength shares cover the state exactly."""
        allocator = DynamicBandwidthAllocator(DBAConfig())
        allocation = allocator.allocate(OccupancySample(cpu=cpu, gpu=gpu))
        cpu_wl = wavelengths_for_share(state, allocation.cpu_fraction)
        gpu_wl = wavelengths_for_share(state, allocation.gpu_fraction)
        assert cpu_wl + gpu_wl == state

    @given(occ=occupancies)
    @settings(max_examples=100, deadline=None)
    def test_idle_side_gets_nothing(self, occ):
        """Steps 3a/3b: an idle side never receives bandwidth."""
        allocator = DynamicBandwidthAllocator(DBAConfig())
        if occ > 0.0:
            only_cpu = allocator.allocate(OccupancySample(cpu=occ, gpu=0.0))
            assert only_cpu.cpu_fraction == 1.0
            only_gpu = allocator.allocate(OccupancySample(cpu=0.0, gpu=occ))
            assert only_gpu.gpu_fraction == 1.0


class TestReactiveMonotonicity:
    def _scaler(self, use_8wl: bool = True) -> ReactivePowerScaler:
        config = PowerScalingConfig(use_8wl=use_8wl)
        return ReactivePowerScaler(
            config, WavelengthLadder(PhotonicConfig())
        )

    @given(first=occupancies, second=occupancies)
    @settings(max_examples=200, deadline=None)
    def test_state_monotone_in_occupancy(self, first, second):
        """More occupancy never selects a lower wavelength state."""
        scaler = self._scaler()
        low, high = sorted((first, second))
        assert scaler.select_state(low) <= scaler.select_state(high)

    @given(occ=occupancies, use_8wl=st.booleans())
    @settings(max_examples=200, deadline=None)
    def test_state_is_on_the_ladder(self, occ, use_8wl):
        scaler = self._scaler(use_8wl=use_8wl)
        state = scaler.select_state(occ)
        assert state in scaler.ladder.states
        if not use_8wl:
            assert state != scaler.ladder.min_state


class TestEq7Feasibility:
    def _selector(self, allow_8wl: bool) -> StateSelector:
        return StateSelector(
            PhotonicConfig(), reservation_window=500, allow_8wl=allow_8wl
        )

    @given(
        packets=st.floats(
            min_value=0.0,
            max_value=5_000.0,
            allow_nan=False,
            allow_infinity=False,
        ),
        allow_8wl=st.booleans(),
    )
    @settings(max_examples=300, deadline=None)
    def test_never_infeasible_when_feasible_exists(self, packets, allow_8wl):
        """Eq. 7 picks a state covering the demand whenever one can."""
        selector = self._selector(allow_8wl)
        demand = max(packets, 0.0) * selector.headroom
        chosen = selector.state_for_packets(packets)
        feasible = [
            state
            for state in selector.candidate_states()
            if demand <= selector.window_capacity_packets(state)
        ]
        if feasible:
            assert demand <= selector.window_capacity_packets(chosen)
        else:
            # Saturated: fall back to the full-power state.
            assert chosen == selector.ladder.max_state

    @given(
        packets=st.floats(
            min_value=0.0,
            max_value=5_000.0,
            allow_nan=False,
            allow_infinity=False,
        ),
        allow_8wl=st.booleans(),
    )
    @settings(max_examples=300, deadline=None)
    def test_picks_cheapest_feasible_state(self, packets, allow_8wl):
        """Among the feasible states Eq. 7 takes the lowest-power one."""
        selector = self._selector(allow_8wl)
        demand = max(packets, 0.0) * selector.headroom
        chosen = selector.state_for_packets(packets)
        feasible = [
            state
            for state in selector.candidate_states()
            if demand <= selector.window_capacity_packets(state)
        ]
        if feasible:
            assert chosen == min(feasible)

    @given(allow_8wl=st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_negative_predictions_clamp_to_cheapest(self, allow_8wl):
        """A negative prediction behaves exactly like zero demand."""
        selector = self._selector(allow_8wl)
        assert selector.state_for_packets(-100.0) == (
            selector.state_for_packets(0.0)
        )
