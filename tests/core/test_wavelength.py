"""Tests for repro.core.wavelength."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PhotonicConfig
from repro.core.wavelength import (
    BandwidthAllocation,
    WavelengthLadder,
    mean_power_w,
    transmission_cycles,
    wavelengths_for_share,
)
from repro.noc.packet import CoreType


@pytest.fixture
def ladder():
    return WavelengthLadder(PhotonicConfig())


class TestWavelengthLadder:
    def test_states_descending(self, ladder):
        assert ladder.states == (64, 48, 32, 16, 8)
        assert ladder.max_state == 64
        assert ladder.min_state == 8

    def test_states_without_lowest(self, ladder):
        assert ladder.states_without_lowest() == (64, 48, 32, 16)

    def test_step_up_saturates(self, ladder):
        assert ladder.step_up(64) == 64
        assert ladder.step_up(48) == 64
        assert ladder.step_up(8) == 16

    def test_step_down_saturates(self, ladder):
        assert ladder.step_down(8) == 8
        assert ladder.step_down(64) == 48

    def test_power_monotone_in_state(self, ladder):
        powers = [ladder.power_w(s) for s in ladder.states]
        assert powers == sorted(powers, reverse=True)

    def test_serialization_monotone(self, ladder):
        cycles = [ladder.serialization_cycles(s) for s in ladder.states]
        assert cycles == sorted(cycles)

    def test_clamp_snaps_to_nearest(self, ladder):
        assert ladder.clamp(60, allow_lowest=True) == 64
        assert ladder.clamp(10, allow_lowest=True) == 8
        assert ladder.clamp(10, allow_lowest=False) == 16

    def test_clamp_identity_on_valid_state(self, ladder):
        for state in ladder.states:
            assert ladder.clamp(state, allow_lowest=True) == state

    def test_index_of(self, ladder):
        assert ladder.index_of(64) == 0
        assert ladder.index_of(8) == 4


class TestBandwidthAllocation:
    def test_even_split(self):
        alloc = BandwidthAllocation.even_split()
        assert alloc.cpu_fraction == alloc.gpu_fraction == 0.5

    def test_fraction_lookup(self):
        alloc = BandwidthAllocation(cpu_fraction=0.75, gpu_fraction=0.25)
        assert alloc.fraction(CoreType.CPU) == 0.75
        assert alloc.fraction(CoreType.GPU) == 0.25

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            BandwidthAllocation(cpu_fraction=-0.1, gpu_fraction=0.5)

    def test_rejects_over_unity_sum(self):
        with pytest.raises(ValueError):
            BandwidthAllocation(cpu_fraction=0.8, gpu_fraction=0.8)

    def test_exclusive_allocations(self):
        BandwidthAllocation(cpu_fraction=1.0, gpu_fraction=0.0)
        BandwidthAllocation(cpu_fraction=0.0, gpu_fraction=1.0)


class TestTransmissionCycles:
    def test_full_link_base_latency(self, ladder):
        assert transmission_cycles(ladder, 64, 1.0) == 2
        assert transmission_cycles(ladder, 16, 1.0) == 8

    def test_half_share_doubles(self, ladder):
        assert transmission_cycles(ladder, 64, 0.5) == 4

    def test_quarter_share(self, ladder):
        assert transmission_cycles(ladder, 64, 0.25) == 8

    def test_multi_flit_scales(self, ladder):
        assert transmission_cycles(ladder, 64, 1.0, size_flits=5) == 10

    def test_zero_share_returns_none(self, ladder):
        assert transmission_cycles(ladder, 64, 0.0) is None

    def test_zero_flits_rejected(self, ladder):
        with pytest.raises(ValueError):
            transmission_cycles(ladder, 64, 1.0, size_flits=0)

    @given(
        state=st.sampled_from([64, 48, 32, 16, 8]),
        fraction=st.floats(min_value=0.01, max_value=1.0),
        flits=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=100, deadline=None)
    def test_never_faster_than_full_link(self, state, fraction, flits):
        """A fractional share never beats the whole link."""
        ladder = WavelengthLadder(PhotonicConfig())
        full = transmission_cycles(ladder, state, 1.0, flits)
        partial = transmission_cycles(ladder, state, fraction, flits)
        assert partial >= full


class TestHelpers:
    def test_wavelengths_for_share(self):
        assert wavelengths_for_share(64, 0.75) == 48
        assert wavelengths_for_share(64, 0.25) == 16

    def test_mean_power_weighted(self, ladder):
        power = mean_power_w(ladder, [(64, 0.5), (8, 0.5)])
        assert power == pytest.approx((1.16 + 0.145) / 2)

    def test_mean_power_empty(self, ladder):
        assert mean_power_w(ladder, []) == 0.0

    def test_mean_power_normalises_fractions(self, ladder):
        power = mean_power_w(ladder, [(64, 2.0), (8, 2.0)])
        assert power == pytest.approx((1.16 + 0.145) / 2)
