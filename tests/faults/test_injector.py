"""Unit tests for the runtime fault state (injector + network context)."""

import pytest

from repro.config import PearlConfig, PhotonicConfig
from repro.core.wavelength import WavelengthLadder
from repro.faults import (
    BitErrorFault,
    FaultSchedule,
    LaserDroopFault,
    NetworkFaultContext,
    RouterFaultInjector,
    WavelengthFault,
)


def _ladder() -> WavelengthLadder:
    return WavelengthLadder(PhotonicConfig())


def _injector(schedule, router_id=0):
    return RouterFaultInjector(
        schedule, router_id, _ladder(), max_wavelengths=64
    )


class TestRouterFaultInjector:
    def test_no_faults_full_capacity(self):
        inj = _injector(FaultSchedule())
        assert inj.capacity == 64
        assert inj.max_usable_state == 64
        assert not inj.link_down
        assert inj.next_event() is None
        assert inj.clamp_state(64) == 64

    def test_fault_applies_at_start_and_clears_at_end(self):
        schedule = FaultSchedule(
            wavelength_faults=(
                WavelengthFault(wavelengths=20, start=10, end=30),
            )
        )
        inj = _injector(schedule)
        assert inj.capacity == 64
        assert inj.advance_to(10)  # onset
        assert inj.capacity == 44
        assert inj.max_usable_state == 32
        assert not inj.advance_to(29)  # nothing new
        assert inj.advance_to(30)  # clear
        assert inj.capacity == 64
        assert inj.max_usable_state == 64

    def test_next_event_tracks_unconsumed_boundaries(self):
        schedule = FaultSchedule(
            wavelength_faults=(
                WavelengthFault(wavelengths=4, start=10, end=30),
            )
        )
        inj = _injector(schedule)
        assert inj.next_event() == 10
        inj.advance_to(10)
        assert inj.next_event() == 30
        inj.advance_to(30)
        assert inj.next_event() is None

    def test_droop_caps_usable_state(self):
        schedule = FaultSchedule(
            droop_faults=(LaserDroopFault(max_state=16, start=0),)
        )
        inj = _injector(schedule)
        inj.advance_to(0)
        assert inj.max_usable_state == 16
        assert inj.clamp_state(64) == 16
        assert inj.clamp_state(8) == 8

    def test_link_down_when_capacity_below_ladder_floor(self):
        schedule = FaultSchedule(
            wavelength_faults=(
                WavelengthFault(wavelengths=60, start=0),
            )
        )
        inj = _injector(schedule)
        inj.advance_to(0)
        assert inj.capacity == 4
        assert inj.max_usable_state is None
        assert inj.link_down
        # The clamp parks the lasers at the ladder floor.
        assert inj.clamp_state(64) == 8

    def test_other_router_unaffected(self):
        schedule = FaultSchedule(
            wavelength_faults=(
                WavelengthFault(wavelengths=32, router=5, start=0),
            )
        )
        inj = _injector(schedule, router_id=0)
        inj.advance_to(0)
        assert inj.capacity == 64

    def test_surviving_wavelengths_skips_disabled(self):
        schedule = FaultSchedule(
            wavelength_faults=(
                WavelengthFault(indices=(0, 1, 2), start=0),
            )
        )
        inj = _injector(schedule)
        inj.advance_to(0)
        assert inj.surviving_wavelengths(limit=4) == (3, 4, 5, 6)
        assert 0 not in inj.surviving_wavelengths()
        assert len(inj.surviving_wavelengths()) == 61


class TestNetworkFaultContext:
    def test_no_bit_errors_never_draws(self):
        schedule = FaultSchedule(
            wavelength_faults=(WavelengthFault(wavelengths=4, start=0),)
        )
        context = NetworkFaultContext(schedule, num_routers=17)
        assert not context.has_bit_errors
        state_before = context._rng.bit_generator.state
        assert not context.corrupts(0, 5, 100)
        assert context._rng.bit_generator.state == state_before

    def test_inactive_rate_never_draws(self):
        schedule = FaultSchedule(
            bit_error_faults=(BitErrorFault(rate=0.5, start=100, end=200),)
        )
        context = NetworkFaultContext(schedule, num_routers=17)
        state_before = context._rng.bit_generator.state
        assert not context.corrupts(0, 5, 50)  # before onset
        assert not context.corrupts(0, 5, 200)  # after clear
        assert context._rng.bit_generator.state == state_before

    def test_rate_one_always_corrupts(self):
        schedule = FaultSchedule(
            bit_error_faults=(BitErrorFault(rate=1.0, start=0),)
        )
        context = NetworkFaultContext(schedule, num_routers=17)
        assert all(context.corrupts(r, 1, 5) for r in range(17))

    def test_router_scoped_rate(self):
        schedule = FaultSchedule(
            bit_error_faults=(BitErrorFault(rate=1.0, router=2, start=0),)
        )
        context = NetworkFaultContext(schedule, num_routers=17)
        assert context.error_rate(2, 0) == 1.0
        assert context.error_rate(3, 0) == 0.0
        assert not context.corrupts(3, 5, 0)

    def test_seed_controls_outcomes(self):
        def outcomes(seed):
            schedule = FaultSchedule(
                bit_error_faults=(BitErrorFault(rate=0.5, start=0),),
                seed=seed,
            )
            context = NetworkFaultContext(schedule, num_routers=17)
            return [context.corrupts(0, 1, 0) for _ in range(64)]

        assert outcomes(1) == outcomes(1)
        assert outcomes(1) != outcomes(2)


class TestResilienceConfigRoundTrip:
    def test_config_io_round_trip(self):
        from repro.config import ResilienceConfig
        from repro.config_io import config_from_dict, config_to_dict

        config = PearlConfig(
            resilience=ResilienceConfig(
                retry_limit=7, nack_latency_cycles=3, retry_backoff_cycles=9
            )
        )
        data = config_to_dict(config)
        assert data["resilience"]["retry_limit"] == 7
        assert config_from_dict(data) == config

    def test_resilience_section_optional(self):
        from repro.config_io import config_from_dict, config_to_dict

        data = config_to_dict(PearlConfig())
        del data["resilience"]
        assert config_from_dict(data) == PearlConfig()

    def test_validation(self):
        from repro.config import ResilienceConfig

        with pytest.raises(ValueError):
            ResilienceConfig(retry_limit=-1)
        with pytest.raises(ValueError):
            ResilienceConfig(nack_latency_cycles=0)
        with pytest.raises(ValueError):
            ResilienceConfig(retry_backoff_cycles=-1)
