"""Unit tests for the fault schedule: validation, round trips, loading."""

import json

import pytest

from repro.faults import (
    BitErrorFault,
    FaultSchedule,
    LaserDroopFault,
    WavelengthFault,
    load_fault_schedule,
    uniform_wavelength_fault,
)


class TestWavelengthFault:
    def test_count_form_fails_top_indices(self):
        fault = WavelengthFault(wavelengths=4, start=0)
        assert fault.failed_indices(64) == frozenset({60, 61, 62, 63})

    def test_explicit_indices(self):
        fault = WavelengthFault(indices=(0, 3, 70), start=0)
        assert fault.failed_indices(64) == frozenset({0, 3})

    def test_active_span_is_half_open(self):
        fault = WavelengthFault(wavelengths=1, start=10, end=20)
        assert not fault.active(9)
        assert fault.active(10)
        assert fault.active(19)
        assert not fault.active(20)

    def test_open_ended_fault_never_clears(self):
        fault = WavelengthFault(wavelengths=1, start=5)
        assert fault.active(10**9)

    def test_requires_some_wavelengths(self):
        with pytest.raises(ValueError):
            WavelengthFault(start=0)

    def test_rejects_inverted_span(self):
        with pytest.raises(ValueError):
            WavelengthFault(wavelengths=1, start=10, end=10)

    def test_uniform_helper_scales_with_fraction(self):
        fault = uniform_wavelength_fault(0.25, start=0)
        assert len(fault.failed_indices(64)) == 16
        # Tiny fractions still fail at least one ring.
        assert len(
            uniform_wavelength_fault(0.001, start=0).failed_indices(64)
        ) == 1


class TestScheduleValidation:
    def test_bit_error_rate_bounds(self):
        with pytest.raises(ValueError):
            BitErrorFault(rate=1.5, start=0)
        with pytest.raises(ValueError):
            BitErrorFault(rate=-0.1, start=0)

    def test_droop_state_positive(self):
        with pytest.raises(ValueError):
            LaserDroopFault(max_state=0, start=0)

    def test_empty_schedule(self):
        assert FaultSchedule().is_empty
        assert not FaultSchedule(
            wavelength_faults=(WavelengthFault(wavelengths=1, start=0),)
        ).is_empty

    def test_for_router_filters_targets(self):
        schedule = FaultSchedule(
            wavelength_faults=(
                WavelengthFault(wavelengths=1, router=3, start=0),
                WavelengthFault(wavelengths=2, router=None, start=0),
            ),
            droop_faults=(LaserDroopFault(max_state=32, router=5, start=0),),
        )
        wl, droop = schedule.for_router(3)
        assert len(wl) == 2 and len(droop) == 0
        wl, droop = schedule.for_router(5)
        assert len(wl) == 1 and len(droop) == 1


class TestRoundTrip:
    def _schedule(self):
        return FaultSchedule(
            wavelength_faults=(
                WavelengthFault(wavelengths=4, router=2, start=10, end=90),
                WavelengthFault(indices=(1, 5), start=0),
            ),
            droop_faults=(LaserDroopFault(max_state=16, start=50),),
            bit_error_faults=(
                BitErrorFault(rate=0.01, router=0, start=5, end=25),
            ),
            seed=123,
        )

    def test_payload_from_dict_round_trip(self):
        schedule = self._schedule()
        assert FaultSchedule.from_dict(schedule.payload()) == schedule

    def test_payload_is_json_able(self):
        schedule = self._schedule()
        encoded = json.dumps(schedule.payload(), sort_keys=True)
        assert (
            FaultSchedule.from_dict(json.loads(encoded)) == schedule
        )

    def test_from_dict_rejects_unknown_keys(self):
        payload = self._schedule().payload()
        payload["typo"] = 1
        with pytest.raises(ValueError):
            FaultSchedule.from_dict(payload)


class TestLoading:
    def test_load_json(self, tmp_path):
        schedule = FaultSchedule(
            bit_error_faults=(BitErrorFault(rate=0.5, start=0),)
        )
        path = tmp_path / "faults.json"
        path.write_text(json.dumps(schedule.payload()))
        assert load_fault_schedule(path) == schedule

    def test_load_yaml(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        schedule = FaultSchedule(
            wavelength_faults=(WavelengthFault(wavelengths=8, start=100),)
        )
        path = tmp_path / "faults.yaml"
        path.write_text(yaml.safe_dump(schedule.payload()))
        assert load_fault_schedule(path) == schedule

    def test_example_schedule_loads(self):
        from pathlib import Path

        example = (
            Path(__file__).resolve().parent.parent.parent
            / "examples"
            / "faults.yaml"
        )
        schedule = load_fault_schedule(example)
        assert not schedule.is_empty
        assert schedule.wavelength_faults
        assert schedule.droop_faults
        assert schedule.bit_error_faults
