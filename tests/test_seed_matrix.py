"""Seed-matrix regression: policy × allocator × seed, fast vs reference.

The golden suite pins one workload at one seed; this matrix spreads
thinner but wider — every power policy under both bandwidth allocators
across three seeds, asserting the fast engine is *bit-identical* to the
reference engine on each combination.  The ML policy's model is not
handed over in memory: it goes through a registry put/promote/get round
trip first, so the deployment path the workers use is the path under
test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import PearlConfig, SimulationConfig
from repro.ml.features import NUM_FEATURES
from repro.ml.lifecycle.registry import DEFAULT_TAG, ModelRegistry
from repro.ml.ridge import RidgeRegression
from repro.noc.network import PearlNetwork
from repro.noc.router import PowerPolicyKind
from repro.traffic.benchmarks import get_benchmark
from repro.traffic.synthetic import generate_pair_trace

# Every case drives the full simulator twice; firmly the slow tier.
pytestmark = pytest.mark.slow

SEEDS = (3, 11, 2018)
POLICIES = ("static", "reactive", "adaptive", "ml", "random")
ALLOCATORS = ("dynamic", "fcfs")

MATRIX = [
    (policy, alloc, seed)
    for policy in POLICIES
    for alloc in ALLOCATORS
    for seed in SEEDS
]


def _handcrafted_model() -> RidgeRegression:
    """Literal weights (no solver) so every platform agrees bit-for-bit."""
    model = RidgeRegression(lam=1.0, standardize=False)
    weights = np.zeros(NUM_FEATURES)
    weights[8] = 0.5
    model.weights = weights
    model.intercept = 4.0
    return model


@pytest.fixture(scope="module")
def registry_model(tmp_path_factory):
    """The ML-policy model, deployed the way production runs get it."""
    registry = ModelRegistry(tmp_path_factory.mktemp("seed-matrix") / "reg")
    source = _handcrafted_model()
    record = registry.put(
        source, training={"key": {"pipeline": "seed_matrix_literal"}}
    )
    registry.promote(record.model_id)
    model = registry.get(DEFAULT_TAG)
    # The artifact round trip must be lossless before it drives runs.
    assert np.array_equal(model.weights, source.weights)
    assert model.intercept == source.intercept
    return model


def _run(policy: str, allocator: str, seed: int, engine: str, ml_model):
    config = PearlConfig(
        simulation=SimulationConfig(
            warmup_cycles=100, measure_cycles=1_000, seed=seed
        )
    )
    trace = generate_pair_trace(
        get_benchmark("fluidanimate"),
        get_benchmark("dct"),
        config.architecture,
        config.simulation.total_cycles,
        seed,
    )
    network = PearlNetwork(
        config,
        power_policy=PowerPolicyKind(policy),
        use_dynamic_bandwidth=(allocator == "dynamic"),
        ml_model=ml_model if policy == "ml" else None,
        seed=seed,
    )
    return network.run(trace, engine=engine)


def _canonical(result) -> dict:
    return {
        "stats": result.stats.to_dict(),
        "state_residency": dict(result.state_residency),
        "mean_laser_power_w": result.mean_laser_power_w,
        "laser_stall_cycles": result.laser_stall_cycles,
        "ml_predictions": list(result.ml_predictions),
    }


@pytest.mark.parametrize(
    "policy,allocator,seed",
    MATRIX,
    ids=[f"{p}-{a}-s{s}" for p, a, s in MATRIX],
)
def test_fast_engine_matches_reference(
    policy: str, allocator: str, seed: int, registry_model
) -> None:
    model = registry_model if policy == "ml" else None
    fast = _canonical(_run(policy, allocator, seed, "fast", model))
    reference = _canonical(_run(policy, allocator, seed, "reference", model))
    assert fast == reference
