"""Seed-matrix regression: policy × allocator × seed across engines.

The golden suite pins one workload at one seed; this matrix spreads
thinner but wider — every power policy under both bandwidth allocators
across three seeds, asserting the fast *and* array engines are
bit-identical to the reference engine on each combination, plus a
faulted and a q4.12-quantized configuration per seed on the array
engine.  The ML policy's model is not handed over in memory: it goes
through a registry put/promote/get round trip first, so the deployment
path the workers use is the path under test.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.config import PearlConfig, SimulationConfig
from repro.faults import (
    BitErrorFault,
    FaultSchedule,
    LaserDroopFault,
    WavelengthFault,
)
from repro.ml.features import NUM_FEATURES
from repro.ml.lifecycle.registry import DEFAULT_TAG, ModelRegistry
from repro.ml.ridge import RidgeRegression
from repro.noc.network import PearlNetwork
from repro.noc.router import PowerPolicyKind
from repro.traffic.benchmarks import get_benchmark
from repro.traffic.collectives import (
    COLLECTIVE_ALGORITHMS,
    generate_collective_trace,
)
from repro.traffic.synthetic import generate_pair_trace

# Every case drives the full simulator twice; firmly the slow tier.
pytestmark = pytest.mark.slow

SEEDS = (3, 11, 2018)
POLICIES = (
    "static",
    "reactive",
    "adaptive",
    "ml",
    "random",
    "proteus",
    "d3noc",
)
ALLOCATORS = ("dynamic", "fcfs")

MATRIX = [
    (policy, alloc, seed)
    for policy in POLICIES
    for alloc in ALLOCATORS
    for seed in SEEDS
]


def _handcrafted_model() -> RidgeRegression:
    """Literal weights (no solver) so every platform agrees bit-for-bit."""
    model = RidgeRegression(lam=1.0, standardize=False)
    weights = np.zeros(NUM_FEATURES)
    weights[8] = 0.5
    model.weights = weights
    model.intercept = 4.0
    return model


@pytest.fixture(scope="module")
def registry_model(tmp_path_factory):
    """The ML-policy model, deployed the way production runs get it."""
    registry = ModelRegistry(tmp_path_factory.mktemp("seed-matrix") / "reg")
    source = _handcrafted_model()
    record = registry.put(
        source, training={"key": {"pipeline": "seed_matrix_literal"}}
    )
    registry.promote(record.model_id)
    model = registry.get(DEFAULT_TAG)
    # The artifact round trip must be lossless before it drives runs.
    assert np.array_equal(model.weights, source.weights)
    assert model.intercept == source.intercept
    return model


def _run(
    policy: str,
    allocator: str,
    seed: int,
    engine: str,
    ml_model,
    quantization: str | None = None,
    faults: FaultSchedule | None = None,
):
    config = PearlConfig(
        simulation=SimulationConfig(
            warmup_cycles=100, measure_cycles=1_000, seed=seed
        )
    )
    if quantization is not None:
        config = config.replace(
            ml=replace(config.ml, quantization=quantization)
        )
    trace = generate_pair_trace(
        get_benchmark("fluidanimate"),
        get_benchmark("dct"),
        config.architecture,
        config.simulation.total_cycles,
        seed,
    )
    network = PearlNetwork(
        config,
        power_policy=PowerPolicyKind(policy),
        use_dynamic_bandwidth=(allocator == "dynamic"),
        ml_model=ml_model if policy == "ml" else None,
        seed=seed,
        faults=faults,
    )
    return network.run(trace, engine=engine)


def _canonical(result) -> dict:
    return {
        "stats": result.stats.to_dict(),
        "state_residency": dict(result.state_residency),
        "mean_laser_power_w": result.mean_laser_power_w,
        "laser_stall_cycles": result.laser_stall_cycles,
        "ml_predictions": list(result.ml_predictions),
    }


@pytest.mark.parametrize(
    "policy,allocator,seed",
    MATRIX,
    ids=[f"{p}-{a}-s{s}" for p, a, s in MATRIX],
)
def test_engines_match_reference(
    policy: str, allocator: str, seed: int, registry_model
) -> None:
    model = registry_model if policy == "ml" else None
    reference = _canonical(
        _run(policy, allocator, seed, "reference", model)
    )
    for engine in ("fast", "array"):
        engine_result = _canonical(
            _run(policy, allocator, seed, engine, model)
        )
        assert engine_result == reference, f"{engine} diverged"


def _seed_faults(seed: int) -> FaultSchedule:
    """A per-seed fault mix (offsets keyed to the seed so the three
    seeds exercise different overlap patterns)."""
    return FaultSchedule(
        wavelength_faults=(
            WavelengthFault(
                wavelengths=24,
                router=seed % 16,
                start=200 + seed % 97,
                end=800 + seed % 97,
            ),
        ),
        droop_faults=(
            LaserDroopFault(max_state=32, router=(seed + 5) % 16, start=400),
        ),
        bit_error_faults=(BitErrorFault(rate=0.02, start=150, end=900),),
    )


#: Hardened variants per seed: quantization only applies to the ML
#: predictor, so the rule-based policies harden under faults instead.
HARDENED = (
    ("ml", "faulted"),
    ("ml", "q4.12"),
    ("proteus", "faulted"),
    ("d3noc", "faulted"),
)


@pytest.mark.parametrize("seed", SEEDS, ids=[f"s{s}" for s in SEEDS])
@pytest.mark.parametrize(
    "policy,variant", HARDENED, ids=[f"{p}-{v}" for p, v in HARDENED]
)
def test_array_engine_hardened_configs(
    policy: str, variant: str, seed: int, registry_model
) -> None:
    """Per-seed faulted and quantized configs on the array engine."""
    quantization = "q4.12" if variant == "q4.12" else None
    faults = _seed_faults(seed) if variant == "faulted" else None
    results = {}
    for engine in ("fast", "array"):
        results[engine] = _canonical(
            _run(
                policy,
                "dynamic",
                seed,
                engine,
                registry_model,
                quantization=quantization,
                faults=faults,
            )
        )
    assert results["array"] == results["fast"]


# ---------------------------------------------------------------------------
# Collective workloads: algorithm × policy × signaling across engines
# ---------------------------------------------------------------------------

COLLECTIVE_SEED = 7
COLLECTIVE_POLICIES = ("reactive", "ml", "proteus", "d3noc")
SIGNALING = ("nrz", "pam4")
COLLECTIVE_MATRIX = [
    (algorithm, policy, signaling)
    for algorithm in COLLECTIVE_ALGORITHMS
    for policy in COLLECTIVE_POLICIES
    for signaling in SIGNALING
]


def _collective_run(
    algorithm: str,
    policy: str,
    signaling: str,
    engine: str,
    ml_model,
    quantization: str | None = None,
    faults: FaultSchedule | None = None,
):
    config = PearlConfig(
        simulation=SimulationConfig(
            warmup_cycles=100, measure_cycles=1_000, seed=COLLECTIVE_SEED
        )
    )
    if signaling != "nrz":
        config = config.replace(
            photonic=replace(config.photonic, signaling=signaling)
        )
    if quantization is not None:
        config = config.replace(
            ml=replace(config.ml, quantization=quantization)
        )
    trace = generate_collective_trace(
        algorithm,
        config.architecture,
        duration=config.simulation.total_cycles,
        seed=COLLECTIVE_SEED,
    )
    network = PearlNetwork(
        config,
        power_policy=PowerPolicyKind(policy),
        ml_model=ml_model if policy == "ml" else None,
        seed=COLLECTIVE_SEED,
        faults=faults,
    )
    return network.run(trace, engine=engine)


@pytest.mark.parametrize(
    "algorithm,policy,signaling",
    COLLECTIVE_MATRIX,
    ids=[f"{a}-{p}-{s}" for a, p, s in COLLECTIVE_MATRIX],
)
def test_collective_engines_match_reference(
    algorithm: str, policy: str, signaling: str, registry_model
) -> None:
    """Every collective × policy × signaling combination is engine-exact."""
    model = registry_model if policy == "ml" else None
    reference = _canonical(
        _collective_run(algorithm, policy, signaling, "reference", model)
    )
    for engine in ("fast", "array"):
        engine_result = _canonical(
            _collective_run(algorithm, policy, signaling, engine, model)
        )
        assert engine_result == reference, f"{engine} diverged"


def test_collective_faulted_array(registry_model) -> None:
    """A faulted PAM4 collective run stays engine-exact."""
    results = {
        engine: _canonical(
            _collective_run(
                "alltoall",
                "ml",
                "pam4",
                engine,
                registry_model,
                faults=_seed_faults(COLLECTIVE_SEED),
            )
        )
        for engine in ("fast", "array")
    }
    assert results["array"] == results["fast"]


def test_collective_quantized_array(registry_model) -> None:
    """q4.12 fixed-point inference on a collective stays engine-exact."""
    results = {
        engine: _canonical(
            _collective_run(
                "allreduce_ring",
                "ml",
                "nrz",
                engine,
                registry_model,
                quantization="q4.12",
            )
        )
        for engine in ("fast", "array")
    }
    assert results["array"] == results["fast"]
