"""Tests for repro.cache.cache — set-associative storage and NMOESI states."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import CacheStats, LineState, SetAssociativeCache


def _cache(size=1024, assoc=2, line=64):
    return SetAssociativeCache(size, assoc, line)


class TestLineState:
    def test_valid_states(self):
        assert not LineState.INVALID.is_valid
        for state in LineState:
            if state is not LineState.INVALID:
                assert state.is_valid

    def test_dirty_states(self):
        assert LineState.MODIFIED.is_dirty
        assert LineState.OWNED.is_dirty
        assert LineState.NON_COHERENT.is_dirty
        assert not LineState.SHARED.is_dirty
        assert not LineState.EXCLUSIVE.is_dirty

    def test_writable_states(self):
        assert LineState.MODIFIED.can_write
        assert LineState.EXCLUSIVE.can_write
        assert LineState.NON_COHERENT.can_write
        assert not LineState.SHARED.can_write
        assert not LineState.OWNED.can_write


class TestGeometry:
    def test_set_count(self):
        cache = _cache(size=1024, assoc=2, line=64)
        assert cache.num_sets == 8

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(100, 3, 64)
        with pytest.raises(ValueError):
            SetAssociativeCache(0, 1, 64)


class TestLookupFill:
    def test_miss_then_hit(self):
        cache = _cache()
        assert not cache.lookup(0x100)
        cache.fill(0x100, LineState.SHARED)
        assert cache.lookup(0x100)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_same_line_different_offset_hits(self):
        cache = _cache(line=64)
        cache.fill(0x100, LineState.SHARED)
        assert cache.lookup(0x100 + 63)

    def test_adjacent_line_misses(self):
        cache = _cache(line=64)
        cache.fill(0x100, LineState.SHARED)
        assert not cache.lookup(0x140)

    def test_fill_invalid_rejected(self):
        with pytest.raises(ValueError):
            _cache().fill(0, LineState.INVALID)

    def test_state_tracking(self):
        cache = _cache()
        cache.fill(0x40, LineState.EXCLUSIVE)
        assert cache.state_of(0x40) is LineState.EXCLUSIVE
        cache.set_state(0x40, LineState.MODIFIED)
        assert cache.state_of(0x40) is LineState.MODIFIED

    def test_set_state_missing_raises(self):
        with pytest.raises(KeyError):
            _cache().set_state(0x40, LineState.SHARED)

    def test_state_of_absent_is_invalid(self):
        assert _cache().state_of(0x999) is LineState.INVALID


class TestEviction:
    def test_lru_victim(self):
        """With a 2-way set, the least recently used line is evicted."""
        cache = _cache(size=256, assoc=2, line=64)  # 2 sets
        set_stride = cache.num_sets * 64
        a, b, c = 0, set_stride, 2 * set_stride  # same set
        cache.fill(a, LineState.SHARED)
        cache.fill(b, LineState.SHARED)
        cache.lookup(a)  # refresh a; b becomes LRU
        evicted = cache.fill(c, LineState.SHARED)
        assert evicted == (b, LineState.SHARED)
        assert cache.lookup(a)
        assert not cache.lookup(b)

    def test_dirty_eviction_counts_writeback(self):
        cache = _cache(size=128, assoc=1, line=64)
        stride = cache.num_sets * 64
        cache.fill(0, LineState.MODIFIED)
        evicted = cache.fill(stride, LineState.SHARED)
        assert evicted == (0, LineState.MODIFIED)
        assert cache.stats.writebacks == 1
        assert cache.stats.evictions == 1

    def test_clean_eviction_no_writeback(self):
        cache = _cache(size=128, assoc=1, line=64)
        stride = cache.num_sets * 64
        cache.fill(0, LineState.SHARED)
        cache.fill(stride, LineState.SHARED)
        assert cache.stats.writebacks == 0

    def test_invalid_way_preferred(self):
        cache = _cache(size=256, assoc=2, line=64)
        cache.fill(0, LineState.SHARED)
        assert cache.fill(cache.num_sets * 64, LineState.SHARED) is None


class TestInvalidate:
    def test_invalidate_returns_previous_state(self):
        cache = _cache()
        cache.fill(0x80, LineState.MODIFIED)
        assert cache.invalidate(0x80) is LineState.MODIFIED
        assert not cache.lookup(0x80)

    def test_invalidate_absent(self):
        assert _cache().invalidate(0x80) is LineState.INVALID


class TestStats:
    def test_miss_rate(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.miss_rate == 0.25
        assert stats.accesses == 4

    def test_miss_rate_no_accesses(self):
        assert CacheStats().miss_rate == 0.0


class TestResidentLines:
    def test_round_trip(self):
        cache = _cache()
        cache.fill(0x000, LineState.SHARED)
        cache.fill(0x440, LineState.MODIFIED)
        resident = cache.resident_lines()
        assert resident[0x000] is LineState.SHARED
        assert resident[0x440] is LineState.MODIFIED


@given(
    addresses=st.lists(
        st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=200
    )
)
@settings(max_examples=30, deadline=None)
def test_capacity_invariant(addresses):
    """The cache never holds more lines than its capacity."""
    cache = SetAssociativeCache(1024, 2, 64)
    max_lines = 1024 // 64
    for address in addresses:
        cache.lookup(address)
        if cache.state_of(address) is LineState.INVALID:
            cache.fill(address, LineState.SHARED)
    assert len(cache.resident_lines()) <= max_lines


@given(
    addresses=st.lists(
        st.integers(min_value=0, max_value=1 << 14), min_size=1, max_size=100
    )
)
@settings(max_examples=30, deadline=None)
def test_refill_after_eviction_always_hits(addresses):
    """Immediately after a fill, a lookup of the same address hits."""
    cache = SetAssociativeCache(512, 2, 64)
    for address in addresses:
        if not cache.lookup(address):
            cache.fill(address, LineState.SHARED)
        assert cache.lookup(address)
