"""Tests for repro.cache.hierarchy — the full Table I memory system."""

import pytest

from repro.cache.coherence import AccessType
from repro.cache.hierarchy import ChipHierarchy, SharedL3, TrafficKind
from repro.config import ArchitectureConfig
from repro.noc.packet import CacheLevel, CoreType


@pytest.fixture
def chip():
    # A 4-cluster chip keeps construction cheap.
    return ChipHierarchy(ArchitectureConfig(num_clusters=4))


class TestClusterAccess:
    def test_cold_load_reaches_l3(self, chip):
        outcome = chip.cluster(0).access(0x10000, CoreType.CPU)
        assert outcome.hit_level == "l3"
        assert TrafficKind.LOCAL_L1_TO_L2 in outcome.traffic
        assert TrafficKind.L2_TO_L3 in outcome.traffic

    def test_warm_load_hits_l1(self, chip):
        cluster = chip.cluster(0)
        cluster.access(0x10000, CoreType.CPU)
        outcome = cluster.access(0x10000, CoreType.CPU)
        assert outcome.hit_level == "l1"
        assert outcome.traffic == []

    def test_l2_hit_after_l1_conflict(self, chip):
        """Different cores of a cluster share the L2."""
        cluster = chip.cluster(0)
        cluster.access(0x10000, CoreType.CPU, core_index=0)
        outcome = cluster.access(0x10000, CoreType.CPU, core_index=1)
        assert outcome.hit_level == "l2"
        assert TrafficKind.L2_TO_L3 not in outcome.traffic

    def test_instruction_fetch_uses_l1i(self, chip):
        cluster = chip.cluster(0)
        outcome = cluster.access(
            0x20000, CoreType.CPU, is_instruction=True
        )
        assert outcome.cache_level in (
            CacheLevel.CPU_L1_INSTR,
            CacheLevel.CPU_L2_DOWN,
        )
        assert cluster.cpu_l1i[0].stats.accesses == 1

    def test_gpu_instruction_fetch_rejected(self, chip):
        with pytest.raises(ValueError):
            chip.cluster(0).access(
                0x20000, CoreType.GPU, is_instruction=True
            )

    def test_gpu_access_uses_gpu_side(self, chip):
        cluster = chip.cluster(0)
        cluster.access(0x30000, CoreType.GPU)
        assert cluster.gpu_l1[0].stats.accesses == 1
        assert cluster.gpu_l2.stats.accesses == 1
        assert cluster.cpu_l2.stats.accesses == 0

    def test_remote_dirty_line_forwarded_from_peer(self, chip):
        chip.cluster(1).access(0x40000, CoreType.CPU, access_type=AccessType.STORE)
        outcome = chip.cluster(0).access(0x40000, CoreType.CPU)
        assert TrafficKind.L2_TO_PEER in outcome.traffic
        assert outcome.peer_cluster == 1

    def test_network_request_uses_l2_down_level(self, chip):
        outcome = chip.cluster(0).access(0x50000, CoreType.GPU)
        assert outcome.cache_level is CacheLevel.GPU_L2_DOWN


class TestSharedL3:
    def test_split_banks(self):
        l3 = SharedL3(ArchitectureConfig())
        assert l3.cpu_bank.size_bytes == l3.gpu_bank.size_bytes
        assert l3.cpu_bank.size_bytes == 4 * 1024 * 1024

    def test_miss_goes_to_memory(self):
        l3 = SharedL3(ArchitectureConfig())
        hit, done = l3.access(0x1000, CoreType.CPU, cycle=0)
        assert not hit
        assert done > 0

    def test_hit_after_fill(self):
        l3 = SharedL3(ArchitectureConfig())
        l3.access(0x1000, CoreType.CPU, cycle=0)
        hit, done = l3.access(0x1000, CoreType.CPU, cycle=10)
        assert hit
        assert done == 10

    def test_banks_isolated_by_core_type(self):
        l3 = SharedL3(ArchitectureConfig())
        l3.access(0x1000, CoreType.CPU, cycle=0)
        hit, _ = l3.access(0x1000, CoreType.GPU, cycle=0)
        assert not hit

    def test_copy_between_banks(self):
        """CPU->GPU sharing copies the line into the GPU bank."""
        l3 = SharedL3(ArchitectureConfig())
        l3.access(0x1000, CoreType.CPU, cycle=0)
        l3.copy_between_banks(0x1000, CoreType.GPU)
        hit, _ = l3.access(0x1000, CoreType.GPU, cycle=0)
        assert hit


class TestChipHierarchy:
    def test_cluster_count(self, chip):
        assert len(chip.clusters) == 4

    def test_controllers_share_directory(self, chip):
        chip.cluster(0).access(0x60000, CoreType.CPU)
        assert len(chip.directory) >= 1


class TestInclusiveInvalidation:
    def test_remote_store_invalidates_l1_copies(self, chip):
        """A peer's store must reach the L1s, not just the L2
        (otherwise cores read stale data)."""
        address = 0x70000
        chip.cluster(0).access(address, CoreType.CPU, access_type=AccessType.STORE)
        chip.cluster(1).access(address, CoreType.CPU, access_type=AccessType.STORE)
        outcome = chip.cluster(0).access(address, CoreType.CPU)
        assert outcome.hit_level != "l1"
        assert TrafficKind.L2_TO_PEER in outcome.traffic

    def test_gpu_l1s_also_invalidated(self, chip):
        address = 0x80000
        chip.cluster(0).access(address, CoreType.GPU, access_type=AccessType.STORE)
        chip.cluster(1).access(address, CoreType.GPU, access_type=AccessType.STORE)
        outcome = chip.cluster(0).access(address, CoreType.GPU)
        assert outcome.hit_level != "l1"
