"""Tests for repro.cache.coherence — the NMOESI protocol engine."""

import pytest

from repro.cache.cache import LineState, SetAssociativeCache
from repro.cache.coherence import (
    AccessType,
    CoherenceAction,
    Directory,
    NmoesiController,
)

LINE = 64


def _system(num_clusters=3, cache_kb=4):
    directory = Directory(LINE)
    peers = {}
    controllers = [
        NmoesiController(
            i,
            SetAssociativeCache(cache_kb * 1024, 4, LINE, name=f"l2.{i}"),
            directory,
            peers,
        )
        for i in range(num_clusters)
    ]
    return directory, controllers


class TestLoads:
    def test_cold_load_is_exclusive(self):
        _, (c0, c1, c2) = _system()
        result = c0.access(0x1000, AccessType.LOAD)
        assert result.state is LineState.EXCLUSIVE
        assert CoherenceAction.FETCH_FROM_MEMORY in result.actions

    def test_second_load_hits(self):
        _, (c0, *_) = _system()
        c0.access(0x1000, AccessType.LOAD)
        result = c0.access(0x1000, AccessType.LOAD)
        assert result.was_hit

    def test_shared_load_from_two_clusters(self):
        """The second loader gets a forwarded copy from the E holder,
        and the E holder is downgraded to SHARED."""
        _, (c0, c1, _) = _system()
        c0.access(0x1000, AccessType.LOAD)
        result = c1.access(0x1000, AccessType.LOAD)
        assert result.state is LineState.SHARED
        assert CoherenceAction.FETCH_FROM_OWNER in result.actions
        assert c0.cache.state_of(0x1000) is LineState.SHARED

    def test_third_loader_fetches_from_memory(self):
        """Once the line is purely SHARED there is no forwarder."""
        _, (c0, c1, c2) = _system()
        c0.access(0x1000, AccessType.LOAD)
        c1.access(0x1000, AccessType.LOAD)
        result = c2.access(0x1000, AccessType.LOAD)
        assert CoherenceAction.FETCH_FROM_MEMORY in result.actions
        assert result.state is LineState.SHARED

    def test_load_from_owner_forwards(self):
        """Loading a line another cluster modified fetches from owner."""
        _, (c0, c1, _) = _system()
        c0.access(0x1000, AccessType.STORE)
        result = c1.access(0x1000, AccessType.LOAD)
        assert CoherenceAction.FETCH_FROM_OWNER in result.actions
        assert result.forwarded_from == 0
        # The previous owner was downgraded to OWNED (dirty, sharable).
        assert c0.cache.state_of(0x1000) is LineState.OWNED


class TestStores:
    def test_cold_store_is_modified(self):
        _, (c0, *_) = _system()
        result = c0.access(0x2000, AccessType.STORE)
        assert result.state is LineState.MODIFIED

    def test_store_hit_on_exclusive_upgrades_silently(self):
        _, (c0, *_) = _system()
        c0.access(0x2000, AccessType.LOAD)  # EXCLUSIVE
        result = c0.access(0x2000, AccessType.STORE)
        assert result.was_hit
        assert c0.cache.state_of(0x2000) is LineState.MODIFIED

    def test_store_invalidates_sharers(self):
        _, (c0, c1, c2) = _system()
        c0.access(0x2000, AccessType.LOAD)
        c1.access(0x2000, AccessType.LOAD)
        result = c2.access(0x2000, AccessType.STORE)
        assert CoherenceAction.INVALIDATE_SHARERS in result.actions
        assert result.invalidated == {0, 1}
        assert c0.cache.state_of(0x2000) is LineState.INVALID
        assert c1.cache.state_of(0x2000) is LineState.INVALID

    def test_store_on_shared_is_upgrade_in_place(self):
        _, (c0, c1, _) = _system()
        c0.access(0x2000, AccessType.LOAD)
        c1.access(0x2000, AccessType.LOAD)  # both SHARED now
        result = c0.access(0x2000, AccessType.STORE)
        assert CoherenceAction.UPGRADE in result.actions
        assert c0.cache.state_of(0x2000) is LineState.MODIFIED

    def test_store_fetches_from_remote_owner(self):
        _, (c0, c1, _) = _system()
        c0.access(0x2000, AccessType.STORE)
        result = c1.access(0x2000, AccessType.STORE)
        assert CoherenceAction.FETCH_FROM_OWNER in result.actions
        assert c0.cache.state_of(0x2000) is LineState.INVALID

    def test_single_writer_invariant(self):
        """After any store, at most one cluster holds a writable copy."""
        _, controllers = _system()
        address = 0x3000
        for controller in controllers:
            controller.access(address, AccessType.STORE)
            writable = [
                c
                for c in controllers
                if c.cache.state_of(address).can_write
            ]
            assert len(writable) == 1
            assert writable[0] is controller


class TestNcStores:
    def test_nc_store_installs_n_state(self):
        _, (c0, *_) = _system()
        result = c0.access(0x4000, AccessType.NC_STORE)
        assert result.state is LineState.NON_COHERENT
        assert c0.cache.state_of(0x4000) is LineState.NON_COHERENT

    def test_nc_store_hit(self):
        _, (c0, *_) = _system()
        c0.access(0x4000, AccessType.NC_STORE)
        assert c0.access(0x4000, AccessType.NC_STORE).was_hit

    def test_nc_store_skips_directory(self):
        directory, (c0, *_) = _system()
        c0.access(0x4000, AccessType.NC_STORE)
        assert len(directory) == 0

    def test_nc_line_downgrades_to_owned_on_remote_read(self):
        _, (c0, c1, _) = _system()
        c0.access(0x4000, AccessType.NC_STORE)
        c0.handle_downgrade(0x4000)
        assert c0.cache.state_of(0x4000) is LineState.OWNED


class TestEvictionInteraction:
    def test_dirty_eviction_reports_writeback(self):
        _, (c0, *_) = _system(cache_kb=1)  # 1 KiB, 4-way: 4 sets
        stride = 4 * LINE
        results = []
        for i in range(6):
            results.append(c0.access(i * stride, AccessType.STORE))
        assert any(
            CoherenceAction.WRITEBACK in r.actions for r in results
        )

    def test_evicted_line_leaves_directory(self):
        directory, (c0, *_) = _system(cache_kb=1)
        stride = 4 * LINE
        for i in range(8):
            c0.access(i * stride, AccessType.LOAD)
        # Only lines still resident may keep directory entries.
        assert len(directory) <= 4


class TestDirectory:
    def test_entry_auto_creates(self):
        directory = Directory(LINE)
        entry = directory.entry(0x123)
        assert entry.is_uncached
        assert len(directory) == 1

    def test_entry_normalises_to_line(self):
        directory = Directory(LINE)
        assert directory.entry(0x100) is directory.entry(0x13F)

    def test_drop_only_when_uncached(self):
        directory = Directory(LINE)
        entry = directory.entry(0x100)
        entry.sharers.add(1)
        directory.drop(0x100)
        assert len(directory) == 1
        entry.sharers.clear()
        directory.drop(0x100)
        assert len(directory) == 0

    def test_rejects_bad_line_size(self):
        with pytest.raises(ValueError):
            Directory(0)


class TestRemoteHandlers:
    def test_downgrade_modified_to_owned(self):
        _, (c0, *_) = _system()
        c0.access(0x5000, AccessType.STORE)
        assert c0.handle_downgrade(0x5000) is LineState.OWNED

    def test_downgrade_exclusive_to_shared(self):
        _, (c0, *_) = _system()
        c0.access(0x5000, AccessType.LOAD)
        assert c0.handle_downgrade(0x5000) is LineState.SHARED

    def test_downgrade_absent_line(self):
        _, (c0, *_) = _system()
        assert c0.handle_downgrade(0x5000) is LineState.INVALID

    def test_invalidate_returns_state(self):
        _, (c0, *_) = _system()
        c0.access(0x5000, AccessType.STORE)
        assert c0.handle_invalidate(0x5000) is LineState.MODIFIED
