"""Tests for repro.cache.memory — the memory-controller model."""

import pytest

from repro.cache.memory import MemoryController


class TestMemoryController:
    def test_basic_latency(self):
        memory = MemoryController(num_controllers=1, access_latency_cycles=120)
        assert memory.request(0, 0) == 120

    def test_queueing_delay_accumulates(self):
        memory = MemoryController(
            num_controllers=1, access_latency_cycles=100, service_cycles=10
        )
        first = memory.request(0, 0)
        second = memory.request(64, 0)  # other line, same channel set of 1
        assert second == first + 10

    def test_channel_interleaving(self):
        memory = MemoryController(num_controllers=2, line_bytes=64)
        assert memory.channel_for(0) == 0
        assert memory.channel_for(64) == 1
        assert memory.channel_for(128) == 0

    def test_parallel_channels_no_queueing(self):
        memory = MemoryController(
            num_controllers=2, access_latency_cycles=100, service_cycles=10
        )
        a = memory.request(0, 0)
        b = memory.request(64, 0)  # different channel
        assert a == b == 100

    def test_idle_channel_no_queueing(self):
        memory = MemoryController(num_controllers=1, service_cycles=10)
        memory.request(0, 0)
        late = memory.request(64, 1000)
        assert late == 1000 + memory.access_latency_cycles

    def test_stats(self):
        memory = MemoryController(num_controllers=1)
        memory.request(0, 0)
        memory.request(64, 0)
        assert memory.stats.requests == 2
        assert memory.stats.mean_latency > 0

    def test_utilization(self):
        memory = MemoryController(num_controllers=2, service_cycles=8)
        memory.request(0, 0)
        assert memory.utilization(100) == pytest.approx(8 / 200)

    def test_utilization_zero_cycles(self):
        assert MemoryController().utilization(0) == 0.0

    def test_negative_cycle_rejected(self):
        with pytest.raises(ValueError):
            MemoryController().request(0, -1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            MemoryController(num_controllers=0)
        with pytest.raises(ValueError):
            MemoryController(service_cycles=0)
