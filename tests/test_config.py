"""Tests for repro.config — paper constants and validation."""

import dataclasses

import pytest

from repro.config import (
    ArchitectureConfig,
    AreaConfig,
    CMeshConfig,
    DBAConfig,
    MLConfig,
    OpticalConfig,
    PearlConfig,
    PhotonicConfig,
    PowerScalingConfig,
    SimulationConfig,
)


class TestArchitectureConfig:
    def test_table1_core_counts(self):
        arch = ArchitectureConfig()
        assert arch.num_cpus == 32
        assert arch.num_gpus == 64

    def test_table1_frequencies(self):
        arch = ArchitectureConfig()
        assert arch.cpu_frequency_ghz == 4.0
        assert arch.gpu_frequency_ghz == 2.0
        assert arch.network_frequency_ghz == 2.0

    def test_table1_caches(self):
        arch = ArchitectureConfig()
        assert arch.cpu_l1i_kb == 32
        assert arch.cpu_l1d_kb == 64
        assert arch.cpu_l2_kb == 256
        assert arch.gpu_l1_kb == 64
        assert arch.gpu_l2_kb == 512
        assert arch.l3_mb == 8
        assert arch.main_memory_gb == 16

    def test_router_count_includes_l3(self):
        arch = ArchitectureConfig()
        assert arch.num_routers == 17
        assert arch.l3_router_id == 16

    def test_network_cycle_duration(self):
        assert ArchitectureConfig().network_cycle_ns == pytest.approx(0.5)

    def test_rejects_zero_clusters(self):
        with pytest.raises(ValueError):
            ArchitectureConfig(num_clusters=0)

    def test_rejects_zero_frequency(self):
        with pytest.raises(ValueError):
            ArchitectureConfig(network_frequency_ghz=0)

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            ArchitectureConfig(cpus_per_cluster=0)

    def test_custom_cluster_count(self):
        arch = ArchitectureConfig(num_clusters=4)
        assert arch.num_routers == 5
        assert arch.l3_router_id == 4


class TestAreaConfig:
    def test_table2_values(self):
        area = AreaConfig()
        assert area.cluster_mm2 == 25.0
        assert area.router_mm2 == 0.342
        assert area.laser_per_router_mm2 == 0.312
        assert area.dynamic_allocation_mm2 == 0.576
        assert area.machine_learning_mm2 == 0.018

    def test_total_scales_with_clusters(self):
        area = AreaConfig()
        assert area.total_mm2(16) > area.total_mm2(8)

    def test_total_includes_shared_components(self):
        area = AreaConfig()
        shared_only = area.total_mm2(0)
        assert shared_only == pytest.approx(
            area.optical_components_mm2
            + area.l3_cache_mm2
            + area.dynamic_allocation_mm2
            + area.machine_learning_mm2
        )


class TestOpticalConfig:
    def test_table5_losses(self):
        opt = OpticalConfig()
        assert opt.modulator_insertion_db == 1.0
        assert opt.coupler_db == 1.0
        assert opt.splitter_db == 0.2
        assert opt.filter_drop_db == 1.5
        assert opt.photodetector_db == 0.1
        assert opt.receiver_sensitivity_dbm == -15.0

    def test_table5_ring_powers(self):
        opt = OpticalConfig()
        assert opt.ring_heating_w == pytest.approx(26e-6)
        assert opt.ring_modulating_w == pytest.approx(500e-6)

    def test_link_loss_is_sum_of_components(self):
        opt = OpticalConfig()
        loss = opt.link_loss_db()
        assert loss > opt.waveguide_db_per_cm * opt.waveguide_length_cm
        assert loss == pytest.approx(
            1.0 + 6.0 + 1.0 + 0.2 + 0.001 * 64 + 1.5 + 0.1
        )


class TestPhotonicConfig:
    def test_paper_laser_powers(self):
        ph = PhotonicConfig()
        assert ph.state_power(64) == pytest.approx(1.16)
        assert ph.state_power(48) == pytest.approx(0.871)
        assert ph.state_power(32) == pytest.approx(0.581)
        assert ph.state_power(16) == pytest.approx(0.29)
        assert ph.state_power(8) == pytest.approx(0.145)

    def test_serialization_cycles_match_section_3c(self):
        ph = PhotonicConfig()
        assert ph.state_serialization_cycles(64) == 2
        assert ph.state_serialization_cycles(48) == 4
        assert ph.state_serialization_cycles(32) == 4
        assert ph.state_serialization_cycles(16) == 8

    def test_unknown_state_rejected(self):
        with pytest.raises(ValueError):
            PhotonicConfig().state_power(24)

    def test_turn_on_cycles_2ns_at_2ghz(self):
        assert PhotonicConfig().turn_on_cycles(2.0) == 4

    def test_turn_on_cycles_rounds_up(self):
        assert PhotonicConfig(laser_turn_on_ns=2.1).turn_on_cycles(2.0) == 5

    def test_states_must_descend(self):
        with pytest.raises(ValueError):
            PhotonicConfig(
                wavelength_states=(8, 16, 32, 48, 64),
                laser_power_w=(0.1, 0.2, 0.3, 0.4, 0.5),
                serialization_cycles=(16, 8, 4, 4, 2),
            )

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            PhotonicConfig(wavelength_states=(64, 32), laser_power_w=(1.0,))

    def test_negative_turn_on_rejected(self):
        with pytest.raises(ValueError):
            PhotonicConfig(laser_turn_on_ns=-1.0)


class TestDBAConfig:
    def test_paper_upper_bounds(self):
        dba = DBAConfig()
        assert dba.cpu_upper_bound == pytest.approx(0.16)
        assert dba.gpu_upper_bound == pytest.approx(0.06)

    def test_paper_step_granularity(self):
        assert DBAConfig().bandwidth_step == 0.25

    @pytest.mark.parametrize("step", [0.0625, 0.125, 0.25])
    def test_paper_evaluated_steps_accepted(self, step):
        assert DBAConfig(bandwidth_step=step).bandwidth_step == step

    def test_arbitrary_step_rejected(self):
        with pytest.raises(ValueError):
            DBAConfig(bandwidth_step=0.3)

    @pytest.mark.parametrize("bound", [0.0, 1.0, -0.1, 1.5])
    def test_out_of_range_bounds_rejected(self, bound):
        with pytest.raises(ValueError):
            DBAConfig(cpu_upper_bound=bound)


class TestPowerScalingConfig:
    def test_thresholds_descending(self):
        thr = PowerScalingConfig().thresholds()
        assert list(thr) == sorted(thr, reverse=True)

    def test_non_descending_thresholds_rejected(self):
        with pytest.raises(ValueError):
            PowerScalingConfig(threshold_upper=0.01, threshold_lower=0.5)

    def test_zero_window_rejected(self):
        with pytest.raises(ValueError):
            PowerScalingConfig(reservation_window=0)


class TestMLConfig:
    def test_paper_feature_count(self):
        assert MLConfig().num_features == 30

    def test_empty_lambda_grid_rejected(self):
        with pytest.raises(ValueError):
            MLConfig(lambda_grid=())

    def test_negative_lambda_rejected(self):
        with pytest.raises(ValueError):
            MLConfig(lambda_grid=(-1.0,))


class TestCMeshConfig:
    def test_paper_router_microarchitecture(self):
        cmesh = CMeshConfig()
        assert cmesh.num_routers == 16
        assert cmesh.virtual_channels == 4
        assert cmesh.buffers_per_vc == 4
        assert cmesh.flit_bits == 128

    def test_rejects_degenerate_mesh(self):
        with pytest.raises(ValueError):
            CMeshConfig(mesh_width=0)


class TestSimulationConfig:
    def test_total_cycles(self):
        sim = SimulationConfig(warmup_cycles=100, measure_cycles=400)
        assert sim.total_cycles == 500

    def test_rejects_zero_measurement(self):
        with pytest.raises(ValueError):
            SimulationConfig(measure_cycles=0)


class TestPearlConfig:
    def test_with_reservation_window_updates_both_controllers(self):
        config = PearlConfig().with_reservation_window(1234)
        assert config.power_scaling.reservation_window == 1234
        assert config.ml.reservation_window == 1234

    def test_with_turn_on_ns(self):
        config = PearlConfig().with_turn_on_ns(16.0)
        assert config.photonic.laser_turn_on_ns == 16.0

    def test_replace_preserves_other_sections(self):
        base = PearlConfig()
        changed = base.replace(
            simulation=SimulationConfig(warmup_cycles=1, measure_cycles=2)
        )
        assert changed.architecture == base.architecture
        assert changed.simulation.total_cycles == 3

    def test_as_dict_round_trips_architecture(self):
        dump = PearlConfig().as_dict()
        assert dump["architecture"]["num_clusters"] == 16

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            PearlConfig().architecture = None
