"""Differential golden-run tests: every policy × allocator × engine.

A failure here means the simulated behaviour changed.  If the change
is intentional, regenerate the snapshots with
``python scripts/update_golden.py`` and commit the diff alongside the
code; if not, it just caught a regression.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from .golden_cases import (
    ALLOCATORS,
    COLLECTIVE_PAM4_CASE,
    COLLECTIVE_RETRAIN_CASE,
    ENGINES,
    POLICIES,
    RETRAIN_CASE,
    run_case,
    run_collective_pam4_case,
    run_collective_retrain_case,
    run_retrain_case,
)

pytestmark = pytest.mark.golden

SNAPSHOT_DIR = Path(__file__).parent / "snapshots"

CASES = [(policy, alloc) for policy in POLICIES for alloc in ALLOCATORS]


def _diff(expected: dict, actual: dict, prefix: str = "") -> list:
    """Human-readable list of leaf-level differences."""
    lines = []
    for key in sorted(set(expected) | set(actual)):
        path = f"{prefix}{key}"
        if key not in expected:
            lines.append(f"  {path}: unexpected key (= {actual[key]!r})")
        elif key not in actual:
            lines.append(f"  {path}: missing (expected {expected[key]!r})")
        elif isinstance(expected[key], dict) and isinstance(actual[key], dict):
            lines.extend(_diff(expected[key], actual[key], prefix=f"{path}."))
        elif expected[key] != actual[key]:
            lines.append(
                f"  {path}: expected {expected[key]!r}, got {actual[key]!r}"
            )
    return lines


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize(
    "policy,allocator", CASES, ids=[f"{p}-{a}" for p, a in CASES]
)
def test_golden_run(policy: str, allocator: str, engine: str) -> None:
    path = SNAPSHOT_DIR / f"{policy}_{allocator}.json"
    assert path.exists(), (
        f"missing snapshot {path.name}; run scripts/update_golden.py"
    )
    expected = json.loads(path.read_text())
    actual = run_case(policy, allocator, engine)
    if actual != expected:
        differences = "\n".join(_diff(expected, actual))
        pytest.fail(
            f"golden mismatch for {policy}/{allocator} on the {engine} "
            f"engine:\n{differences}\n"
            "If this change is intentional, regenerate with "
            "scripts/update_golden.py."
        )


@pytest.mark.parametrize("engine", ENGINES)
def test_golden_retrain_mid_run(engine: str) -> None:
    """The drift->retrain->promote->swap case, pinned per engine.

    Beyond the traffic statistics this pins the promoted registry model
    ids (content digests of the refit weights + training key), so the
    online retraining arithmetic itself is under snapshot control.
    """
    path = SNAPSHOT_DIR / f"{RETRAIN_CASE}.json"
    assert path.exists(), (
        f"missing snapshot {path.name}; run scripts/update_golden.py"
    )
    expected = json.loads(path.read_text())
    actual = run_retrain_case(engine)
    assert actual["retrain_events"] >= 1, "the golden case must retrain"
    if actual != expected:
        differences = "\n".join(_diff(expected, actual))
        pytest.fail(
            f"golden mismatch for {RETRAIN_CASE} on the {engine} "
            f"engine:\n{differences}\n"
            "If this change is intentional, regenerate with "
            "scripts/update_golden.py."
        )


@pytest.mark.parametrize("engine", ENGINES)
def test_golden_collective_retrain(engine: str) -> None:
    """The collective-driven drift->retrain->promote case, per engine."""
    path = SNAPSHOT_DIR / f"{COLLECTIVE_RETRAIN_CASE}.json"
    assert path.exists(), (
        f"missing snapshot {path.name}; run scripts/update_golden.py"
    )
    expected = json.loads(path.read_text())
    actual = run_collective_retrain_case(engine)
    assert actual["retrain_events"] >= 1, "the golden case must retrain"
    if actual != expected:
        differences = "\n".join(_diff(expected, actual))
        pytest.fail(
            f"golden mismatch for {COLLECTIVE_RETRAIN_CASE} on the "
            f"{engine} engine:\n{differences}\n"
            "If this change is intentional, regenerate with "
            "scripts/update_golden.py."
        )


@pytest.mark.parametrize("engine", ENGINES)
def test_golden_collective_pam4(engine: str) -> None:
    """The PAM4 all-to-all case: multilevel signaling under snapshot."""
    path = SNAPSHOT_DIR / f"{COLLECTIVE_PAM4_CASE}.json"
    assert path.exists(), (
        f"missing snapshot {path.name}; run scripts/update_golden.py"
    )
    expected = json.loads(path.read_text())
    actual = run_collective_pam4_case(engine)
    if actual != expected:
        differences = "\n".join(_diff(expected, actual))
        pytest.fail(
            f"golden mismatch for {COLLECTIVE_PAM4_CASE} on the "
            f"{engine} engine:\n{differences}\n"
            "If this change is intentional, regenerate with "
            "scripts/update_golden.py."
        )
