"""Shared definitions for the golden-run differential harness.

One small workload (fluidanimate+dct, 200 warm-up + 1500 measured
cycles) is simulated under every (power policy × bandwidth allocator)
combination, and the canonical form of each run is pinned as a JSON
snapshot under ``tests/golden/snapshots/``.  Both cycle engines are
checked against the *same* snapshot, so the harness simultaneously
catches unintended behavioural drift and fast/reference divergence.

Regenerate snapshots with ``python scripts/update_golden.py`` after an
*intentional* behaviour change (see ``docs/resilience.md``).
"""

from __future__ import annotations

import hashlib
from typing import Dict, List

import numpy as np

from repro.config import PearlConfig, SimulationConfig
from repro.ml.features import NUM_FEATURES
from repro.ml.ridge import RidgeRegression
from repro.noc.network import PearlNetwork, PearlRunResult
from repro.noc.router import PowerPolicyKind
from repro.traffic.benchmarks import get_benchmark
from repro.traffic.synthetic import generate_pair_trace

GOLDEN_SEED = 11
POLICIES = (
    "static",
    "reactive",
    "adaptive",
    "ml",
    "random",
    "proteus",
    "d3noc",
)
ALLOCATORS = ("dynamic", "fcfs")
ENGINES = ("fast", "reference", "array")

#: Snapshot stem of the drift->retrain->promote->swap mid-run case.
RETRAIN_CASE = "ml_retrain_dynamic"


def golden_config() -> PearlConfig:
    """The (short) run configuration every golden case uses."""
    return PearlConfig(
        simulation=SimulationConfig(
            warmup_cycles=200, measure_cycles=1500, seed=GOLDEN_SEED
        )
    )


def golden_model() -> RidgeRegression:
    """A handcrafted ridge model for the ML-policy cases.

    The weights are set directly instead of fitted: a closed-form
    lstsq/BLAS solve could differ in the last ulp across platforms,
    while a literal weight vector is bit-identical everywhere.  Feature
    8 (packets received from local cores last window) with a 0.5 gain
    plus a constant bias gives predictions that actually vary with
    load, so the selector exercises several ladder states.
    """
    model = RidgeRegression(lam=1.0, standardize=False)
    weights = np.zeros(NUM_FEATURES)
    weights[8] = 0.5
    model.weights = weights
    model.intercept = 4.0
    return model


def case_names() -> List[str]:
    """Snapshot stems, one per (policy × allocator) combination."""
    return [f"{policy}_{alloc}" for policy in POLICIES for alloc in ALLOCATORS]


def canonical(result: PearlRunResult) -> Dict[str, object]:
    """The JSON-able canonical form of one run, compared exactly.

    Per-packet latencies are folded into a digest so snapshots stay
    small while still pinning every individual latency sample.
    """
    stats = result.stats
    latency_digest = hashlib.sha256(
        ",".join(str(value) for value in stats._latencies).encode()
    ).hexdigest()
    return {
        "stats": stats.to_dict(include_latencies=False),
        "latencies_sha256": latency_digest,
        "state_residency": {
            str(state): fraction
            for state, fraction in sorted(result.state_residency.items())
        },
        "mean_laser_power_w": result.mean_laser_power_w,
        "laser_stall_cycles": result.laser_stall_cycles,
    }


def run_case(policy: str, allocator: str, engine: str) -> Dict[str, object]:
    """Simulate one golden case and return its canonical form."""
    config = golden_config()
    trace = generate_pair_trace(
        get_benchmark("fluidanimate"),
        get_benchmark("dct"),
        config.architecture,
        config.simulation.total_cycles,
        GOLDEN_SEED,
    )
    network = PearlNetwork(
        config,
        power_policy=PowerPolicyKind(policy),
        use_dynamic_bandwidth=(allocator == "dynamic"),
        ml_model=golden_model() if policy == "ml" else None,
        seed=GOLDEN_SEED,
    )
    return canonical(network.run(trace, engine=engine))


def drifting_model() -> RidgeRegression:
    """The golden model plus a training scaler centred far from any
    deployment feature, so the drift monitor trips deterministically."""
    from repro.ml.ridge import Standardizer

    model = golden_model()
    model._scaler = Standardizer(
        mean=np.full(NUM_FEATURES, -100.0), scale=np.ones(NUM_FEATURES)
    )
    return model


def retrain_config() -> PearlConfig:
    """Golden run length, 200-cycle windows, one guaranteed retrain."""
    from dataclasses import replace

    config = golden_config().with_reservation_window(200)
    return config.replace(
        ml=replace(
            config.ml,
            drift_detection=True,
            drift_action="retrain",
            drift_calibration_windows=2,
            drift_patience=2,
            retrain_min_samples=20,
            retrain_cooldown_windows=10_000,
        )
    )


def run_retrain_case(engine: str) -> Dict[str, object]:
    """The mid-run drift->retrain->promote->swap case.

    The canonical form additionally pins the retrain count and the
    promoted model ids — registry ids are content digests, so a change
    in the pooled training rows or the refit arithmetic shows up here
    as a snapshot diff even if the traffic statistics happen to agree.
    """
    import tempfile

    from repro.ml.lifecycle.registry import ModelRegistry

    config = retrain_config()
    trace = generate_pair_trace(
        get_benchmark("fluidanimate"),
        get_benchmark("dct"),
        config.architecture,
        config.simulation.total_cycles,
        GOLDEN_SEED,
    )
    with tempfile.TemporaryDirectory() as tmp:
        network = PearlNetwork(
            config,
            power_policy=PowerPolicyKind.ML,
            ml_model=drifting_model(),
            seed=GOLDEN_SEED,
            registry=ModelRegistry(tmp),
        )
        result = network.run(trace, engine=engine)
    out = canonical(result)
    out["retrain_events"] = result.retrain_events
    out["retrained_model_ids"] = list(result.retrained_model_ids)
    return out


#: Snapshot stems of the collective-workload golden cases.
COLLECTIVE_RETRAIN_CASE = "collective_allreduce_ml_retrain"
COLLECTIVE_PAM4_CASE = "collective_alltoall_pam4"


def _collective_trace(config: PearlConfig, algorithm: str):
    from repro.traffic.collectives import generate_collective_trace

    return generate_collective_trace(
        algorithm,
        config.architecture,
        duration=config.simulation.total_cycles,
        seed=GOLDEN_SEED,
    )


def run_collective_retrain_case(engine: str) -> Dict[str, object]:
    """drift -> retrain -> promote -> swap driven by an all-reduce.

    The drifting model (scaler centred at -100) guarantees the monitor
    trips on the collective's feature stream; the canonical form pins
    the promoted registry ids, so the pooled rows the collective's
    bursty windows feed into the refit are under snapshot control.
    """
    import tempfile

    from repro.ml.lifecycle.registry import ModelRegistry

    config = retrain_config()
    trace = _collective_trace(config, "allreduce_ring")
    with tempfile.TemporaryDirectory() as tmp:
        network = PearlNetwork(
            config,
            power_policy=PowerPolicyKind.ML,
            ml_model=drifting_model(),
            seed=GOLDEN_SEED,
            registry=ModelRegistry(tmp),
        )
        result = network.run(trace, engine=engine)
    out = canonical(result)
    out["retrain_events"] = result.retrain_events
    out["retrained_model_ids"] = list(result.retrained_model_ids)
    return out


def run_collective_pam4_case(engine: str) -> Dict[str, object]:
    """An all-to-all exchange under PAM4 multilevel signaling.

    Reactive policy with the default allocator: the snapshot pins the
    halved serialization ladder and the 4.8 dB laser penalty end to
    end (state residencies, per-flit energies, laser power) without
    involving any fitted model.
    """
    from dataclasses import replace

    config = golden_config()
    config = config.replace(
        photonic=replace(config.photonic, signaling="pam4")
    )
    trace = _collective_trace(config, "alltoall")
    network = PearlNetwork(
        config, power_policy=PowerPolicyKind.REACTIVE, seed=GOLDEN_SEED
    )
    return canonical(network.run(trace, engine=engine))
