"""Tests for repro.noc.stats."""

import pytest

from repro.noc.packet import CacheLevel, CoreType, make_request, make_response
from repro.noc.stats import NetworkStats


def _delivered_request(stats, cycle=10):
    packet = make_request(0, 16, CoreType.CPU, CacheLevel.CPU_L2_DOWN, cycle=0)
    stats.on_injected(packet)
    stats.on_delivered(packet, cycle)
    return packet


class TestCounters:
    def test_injection_and_delivery(self):
        stats = NetworkStats()
        _delivered_request(stats)
        cpu = stats.counters[CoreType.CPU]
        assert cpu.packets_injected == 1
        assert cpu.packets_delivered == 1
        assert cpu.mean_latency == 10.0

    def test_flit_accounting(self):
        stats = NetworkStats()
        packet = make_response(16, 0, CoreType.GPU, CacheLevel.L3, cycle=0)
        stats.on_injected(packet)
        stats.on_delivered(packet, 5)
        gpu = stats.counters[CoreType.GPU]
        assert gpu.flits_delivered == 5
        assert stats.bits_delivered == 5 * 128

    def test_local_packets_tracked_separately(self):
        stats = NetworkStats()
        local = make_request(2, 2, CoreType.CPU, CacheLevel.CPU_L1_DATA, cycle=0)
        stats.on_injected(local)
        stats.on_delivered(local, 2)
        assert stats.local_packets_delivered == 1
        assert stats.network_flits_delivered == 0

    def test_network_flits_counted(self):
        stats = NetworkStats()
        _delivered_request(stats)
        assert stats.network_flits_delivered == 1


class TestMeasurementWindow:
    def test_begin_measurement_resets(self):
        stats = NetworkStats()
        _delivered_request(stats)
        stats.begin_measurement(100)
        assert stats.packets_delivered == 0
        assert stats.measure_start_cycle == 100

    def test_measured_cycles(self):
        stats = NetworkStats()
        stats.begin_measurement(100)
        stats.finish(600)
        assert stats.measured_cycles == 500

    def test_throughput_uses_network_flits(self):
        stats = NetworkStats()
        stats.begin_measurement(0)
        _delivered_request(stats)
        local = make_request(1, 1, CoreType.CPU, CacheLevel.CPU_L1_DATA, cycle=0)
        stats.on_injected(local)
        stats.on_delivered(local, 1)
        stats.finish(100)
        assert stats.throughput_flits_per_cycle() == pytest.approx(1 / 100)

    def test_throughput_gbps(self):
        stats = NetworkStats()
        stats.begin_measurement(0)
        _delivered_request(stats)
        stats.finish(1)
        assert stats.throughput_gbps(2.0) == pytest.approx(128 * 2.0)


class TestDerivedMetrics:
    def test_link_utilization(self):
        stats = NetworkStats()
        for busy in (True, False, True, True):
            stats.on_link_sample(busy)
        assert stats.link_utilization() == pytest.approx(0.75)

    def test_link_utilization_empty(self):
        assert NetworkStats().link_utilization() == 0.0

    def test_mean_latency_empty(self):
        assert NetworkStats().mean_latency() == 0.0

    def test_energy_per_bit(self):
        stats = NetworkStats()
        stats.begin_measurement(0)
        _delivered_request(stats)
        stats.finish(10)
        stats.laser_energy_j = 1e-9
        # 128 network bits delivered.
        assert stats.energy_per_bit_pj() == pytest.approx(1e3 / 128)

    def test_energy_per_bit_no_traffic(self):
        assert NetworkStats().energy_per_bit_pj() == 0.0

    def test_mean_laser_power(self):
        stats = NetworkStats()
        stats.begin_measurement(0)
        stats.finish(2_000)  # 1 us at 2 GHz
        stats.laser_energy_j = 1e-6
        assert stats.mean_laser_power_w(2.0) == pytest.approx(1.0)

    def test_total_energy_sums_components(self):
        stats = NetworkStats()
        stats.laser_energy_j = 1.0
        stats.trimming_energy_j = 2.0
        stats.ml_energy_j = 3.0
        stats.electrical_energy_j = 4.0
        assert stats.total_energy_j() == pytest.approx(10.0)

    def test_summary_keys(self):
        summary = NetworkStats().summary()
        for key in (
            "throughput_flits_per_cycle",
            "mean_latency_cycles",
            "energy_per_bit_pj",
            "laser_power_w",
        ):
            assert key in summary


class TestLatencyPercentiles:
    def _populated(self):
        stats = NetworkStats()
        for latency in range(1, 101):  # latencies 1..100
            packet = make_request(
                0, 16, CoreType.CPU, CacheLevel.CPU_L2_DOWN, cycle=0
            )
            stats.on_injected(packet)
            stats.on_delivered(packet, latency)
        return stats

    def test_median(self):
        stats = self._populated()
        assert stats.latency_percentile(50) == pytest.approx(50, abs=1)

    def test_p99_near_max(self):
        stats = self._populated()
        assert stats.latency_percentile(99) == pytest.approx(99, abs=1)
        assert stats.latency_percentile(100) == 100

    def test_percentiles_monotone(self):
        stats = self._populated()
        values = [stats.latency_percentile(q) for q in (0, 25, 50, 75, 95, 100)]
        assert values == sorted(values)

    def test_summary_keys(self):
        summary = self._populated().latency_summary()
        assert set(summary) == {"p50", "p95", "p99", "max"}

    def test_empty_is_zero(self):
        assert NetworkStats().latency_percentile(99) == 0.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            NetworkStats().latency_percentile(101)

    def test_reset_by_begin_measurement(self):
        stats = self._populated()
        stats.begin_measurement(0)
        assert stats.latency_percentile(50) == 0.0


class TestSerialization:
    def _populated_run(self):
        stats = NetworkStats()
        stats.begin_measurement(100)
        for cycle in (10, 20, 35):
            _delivered_request(stats, cycle=cycle)
        gpu = make_response(16, 0, CoreType.GPU, CacheLevel.L3, cycle=0)
        stats.on_injected(gpu)
        stats.on_delivered(gpu, 7)
        for busy in (True, False, True):
            stats.on_link_sample(busy)
        stats.laser_energy_j = 1.5e-6
        stats.trimming_energy_j = 2.5e-7
        stats.modulation_energy_j = 1.25e-8
        stats.receiver_energy_j = 3.0e-8
        stats.ml_energy_j = 4.0e-9
        stats.electrical_energy_j = 5.5e-7
        stats.finish(600)
        return stats

    def test_roundtrip_is_lossless(self):
        stats = self._populated_run()
        rebuilt = NetworkStats.from_dict(stats.to_dict())
        assert rebuilt.to_dict() == stats.to_dict()
        assert rebuilt.summary() == stats.summary()
        assert rebuilt.latency_summary() == stats.latency_summary()

    def test_roundtrip_with_external_latencies(self):
        stats = self._populated_run()
        data = stats.to_dict(include_latencies=False)
        assert "latencies" not in data
        rebuilt = NetworkStats.from_dict(data, latencies=stats._latencies)
        assert rebuilt.to_dict() == stats.to_dict()

    def test_empty_roundtrip(self):
        rebuilt = NetworkStats.from_dict(NetworkStats().to_dict())
        assert rebuilt.packets_delivered == 0
        assert rebuilt.mean_latency() == 0.0


class TestMerge:
    def _run(self, cycles, deliveries):
        stats = NetworkStats()
        stats.begin_measurement(0)
        for cycle in deliveries:
            _delivered_request(stats, cycle=cycle)
        stats.laser_energy_j = 1e-6 * len(deliveries)
        stats.finish(cycles)
        return stats

    def test_counters_and_energies_sum(self):
        a = self._run(100, [10, 20])
        b = self._run(200, [30])
        merged = NetworkStats.merge([a, b])
        assert merged.packets_delivered == 3
        assert merged.network_flits_delivered == 3
        assert merged.laser_energy_j == pytest.approx(3e-6)

    def test_measurement_windows_concatenate(self):
        a = self._run(100, [10])
        b = self._run(200, [30])
        merged = NetworkStats.merge([a, b])
        assert merged.measured_cycles == 300
        assert merged.throughput_flits_per_cycle() == pytest.approx(2 / 300)

    def test_latency_samples_concatenate(self):
        a = self._run(100, [10, 20])
        b = self._run(200, [30])
        merged = NetworkStats.merge([a, b])
        assert sorted(merged._latencies) == [10, 20, 30]
        assert merged.latency_percentile(100) == 30

    def test_merge_of_one_matches_original(self):
        original = self._run(100, [10, 20])
        merged = NetworkStats.merge([original])
        assert merged.to_dict() == original.to_dict()

    def test_merge_empty_is_empty(self):
        merged = NetworkStats.merge([])
        assert merged.packets_delivered == 0


class TestFieldCoverage:
    """Every ``__init__`` attribute must survive round trips and merges.

    Guards against fields being silently dropped: every attribute is
    populated with a distinct value via ``vars()`` (so a newly added
    field is picked up automatically), then checked after a
    to_dict/from_dict round trip and after a single-part merge.
    """

    def _populated(self) -> NetworkStats:
        stats = NetworkStats()
        values = iter(range(3, 1000))
        for name, attr in vars(stats).items():
            if name == "counters":
                for counter in attr.values():
                    for field in vars(counter):
                        setattr(counter, field, next(values))
            elif name == "_latencies":
                stats._latencies = [next(values), next(values)]
            elif isinstance(attr, float):
                setattr(stats, name, next(values) + 0.5)
            elif isinstance(attr, int):
                setattr(stats, name, next(values))
            else:
                raise AssertionError(
                    f"unhandled NetworkStats attribute {name!r}: "
                    "teach this test (and to_dict/merge) about it"
                )
        return stats

    def test_roundtrip_carries_every_attribute(self):
        original = self._populated()
        rebuilt = NetworkStats.from_dict(original.to_dict())
        assert vars(rebuilt) == vars(original)

    def test_external_latency_roundtrip_carries_every_attribute(self):
        original = self._populated()
        rebuilt = NetworkStats.from_dict(
            original.to_dict(include_latencies=False),
            latencies=original._latencies,
        )
        assert vars(rebuilt) == vars(original)

    def test_merge_of_one_carries_every_attribute(self):
        original = self._populated()
        merged = NetworkStats.merge([original])
        expected = dict(vars(original))
        actual = dict(vars(merged))
        # merge re-bases the measurement window at cycle 0; the window
        # *length* is what must survive, not its absolute position.
        assert merged.measure_start_cycle == 0
        assert merged.measured_cycles == original.measured_cycles
        for rebased in ("measure_start_cycle", "final_cycle"):
            expected.pop(rebased)
            actual.pop(rebased)
        assert actual == expected
