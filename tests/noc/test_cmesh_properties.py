"""Property-based invariants of the CMESH wormhole mesh."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CMeshConfig, SimulationConfig
from repro.noc.cmesh import CMeshNetwork, CMeshRouter, LOCAL
from repro.noc.packet import CacheLevel, CoreType, PacketClass
from repro.traffic.trace import InjectionEvent, Trace


@st.composite
def mesh_traces(draw):
    """Small random traces over the 16-node mesh plus the L3 alias."""
    n = draw(st.integers(min_value=0, max_value=40))
    events = []
    for _ in range(n):
        source = draw(st.integers(min_value=0, max_value=15))
        destination = draw(st.integers(min_value=0, max_value=16))
        core = draw(st.sampled_from([CoreType.CPU, CoreType.GPU]))
        if source == destination:
            level = (
                CacheLevel.CPU_L1_DATA
                if core is CoreType.CPU
                else CacheLevel.GPU_L1
            )
        else:
            level = (
                CacheLevel.CPU_L2_DOWN
                if core is CoreType.CPU
                else CacheLevel.GPU_L2_DOWN
            )
        events.append(
            InjectionEvent(
                cycle=draw(st.integers(min_value=0, max_value=200)),
                source=source,
                destination=destination,
                core_type=core,
                packet_class=PacketClass.REQUEST,
                cache_level=level,
            )
        )
    return Trace(events, name="random-mesh")


class TestRoutingProperties:
    @given(
        start=st.integers(min_value=0, max_value=15),
        destination=st.integers(min_value=0, max_value=15),
    )
    @settings(max_examples=100, deadline=None)
    def test_xy_routing_always_reaches_destination(self, start, destination):
        """Following route() hop by hop terminates at the destination."""
        config = CMeshConfig()
        current = start
        for _ in range(8):  # diameter of a 4x4 mesh is 6
            router = CMeshRouter(current, config)
            port = router.route(destination)
            if port == LOCAL:
                break
            current = router.neighbor(port)
            assert current is not None
        assert current == destination

    @given(
        start=st.integers(min_value=0, max_value=15),
        destination=st.integers(min_value=0, max_value=15),
    )
    @settings(max_examples=100, deadline=None)
    def test_xy_path_length_is_manhattan(self, start, destination):
        config = CMeshConfig()
        hops = 0
        current = start
        while current != destination:
            router = CMeshRouter(current, config)
            current = router.neighbor(router.route(destination))
            hops += 1
        expected = abs(start % 4 - destination % 4) + abs(
            start // 4 - destination // 4
        )
        assert hops == expected


class TestMeshInvariants:
    @given(trace=mesh_traces())
    @settings(max_examples=10, deadline=None)
    def test_drains_completely_given_time(self, trace):
        """Every offered packet (and its response) is delivered."""
        network = CMeshNetwork(
            simulation=SimulationConfig(warmup_cycles=0, measure_cycles=5_000)
        )
        stats = network.run(trace)
        injected = sum(c.packets_injected for c in stats.counters.values())
        assert stats.packets_delivered == injected

    @given(trace=mesh_traces(), divisor=st.sampled_from([1, 2, 4]))
    @settings(max_examples=10, deadline=None)
    def test_no_overdelivery(self, trace, divisor):
        network = CMeshNetwork(
            simulation=SimulationConfig(warmup_cycles=0, measure_cycles=800),
            bandwidth_divisor=divisor,
        )
        stats = network.run(trace)
        injected = sum(c.packets_injected for c in stats.counters.values())
        assert stats.packets_delivered <= injected
