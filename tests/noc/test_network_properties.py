"""Property-based invariants of the PEARL network simulator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    MLConfig,
    PearlConfig,
    PowerScalingConfig,
    SimulationConfig,
)
from repro.noc.network import PearlNetwork
from repro.noc.packet import CacheLevel, CoreType, PacketClass
from repro.noc.router import PowerPolicyKind
from repro.traffic.trace import InjectionEvent, Trace


def _config(cycles):
    return PearlConfig(
        simulation=SimulationConfig(warmup_cycles=0, measure_cycles=cycles),
        power_scaling=PowerScalingConfig(reservation_window=100),
        ml=MLConfig(reservation_window=100),
    )


@st.composite
def traces(draw):
    """Small random request traces over the 17-node PEARL network."""
    n = draw(st.integers(min_value=0, max_value=60))
    events = []
    for _ in range(n):
        source = draw(st.integers(min_value=0, max_value=15))
        destination = draw(st.integers(min_value=0, max_value=16))
        core = draw(st.sampled_from([CoreType.CPU, CoreType.GPU]))
        if source == destination:
            level = (
                CacheLevel.CPU_L1_DATA
                if core is CoreType.CPU
                else CacheLevel.GPU_L1
            )
        else:
            level = (
                CacheLevel.CPU_L2_DOWN
                if core is CoreType.CPU
                else CacheLevel.GPU_L2_DOWN
            )
        events.append(
            InjectionEvent(
                cycle=draw(st.integers(min_value=0, max_value=300)),
                source=source,
                destination=destination,
                core_type=core,
                packet_class=PacketClass.REQUEST,
                cache_level=level,
            )
        )
    return Trace(events, name="random")


class TestNetworkInvariants:
    @given(trace=traces(), policy=st.sampled_from(
        [PowerPolicyKind.STATIC, PowerPolicyKind.REACTIVE, PowerPolicyKind.RANDOM]
    ))
    @settings(max_examples=15, deadline=None)
    def test_no_overdelivery_and_latency_positive(self, trace, policy):
        """Delivered <= offered (requests + responses); latencies > 0."""
        network = PearlNetwork(_config(1_200), power_policy=policy)
        result = network.run(trace)
        stats = result.stats
        injected = sum(c.packets_injected for c in stats.counters.values())
        assert stats.packets_delivered <= injected
        if stats.packets_delivered:
            assert stats.mean_latency() > 0

    @given(trace=traces())
    @settings(max_examples=10, deadline=None)
    def test_energy_non_negative(self, trace):
        stats = PearlNetwork(_config(800)).run(trace).stats
        assert stats.laser_energy_j >= 0
        assert stats.trimming_energy_j >= 0
        assert stats.total_energy_j() >= 0

    @given(trace=traces())
    @settings(max_examples=10, deadline=None)
    def test_residency_is_distribution(self, trace):
        result = PearlNetwork(
            _config(800), power_policy=PowerPolicyKind.REACTIVE
        ).run(trace)
        total = sum(result.state_residency.values())
        assert abs(total - 1.0) < 1e-9
        assert all(0.0 <= f <= 1.0 for f in result.state_residency.values())

    @given(trace=traces())
    @settings(max_examples=8, deadline=None)
    def test_long_enough_run_drains_everything(self, trace):
        """With a quiet tail, every request and its response complete."""
        network = PearlNetwork(_config(4_000))
        result = network.run(trace)
        stats = result.stats
        injected = sum(c.packets_injected for c in stats.counters.values())
        assert stats.packets_delivered == injected
        assert not network._in_flight
        assert network.injection_backlog_size == 0
