"""Tests for repro.noc.mwsr — the token-MWSR crossbar baseline."""

import pytest

from repro.config import PearlConfig, SimulationConfig
from repro.noc.mwsr import MwsrNetwork, TokenChannel
from repro.noc.network import PearlNetwork
from repro.traffic.synthetic import uniform_random_trace
from repro.traffic.trace import Trace


def _config(measure=1_500, warmup=100):
    return PearlConfig(
        simulation=SimulationConfig(warmup_cycles=warmup, measure_cycles=measure)
    )


class TestTokenChannel:
    def test_token_rotates_while_idle(self):
        channel = TokenChannel(destination=0, num_sources=4)
        for cycle in range(3):
            channel.advance(cycle)
        assert channel.token_at == 3

    def test_acquire_requires_token_position(self):
        channel = TokenChannel(destination=0, num_sources=4)
        assert not channel.try_acquire(source=2, cycle=0)
        assert channel.try_acquire(source=0, cycle=0)

    def test_held_channel_blocks_others(self):
        channel = TokenChannel(destination=0, num_sources=4)
        assert channel.try_acquire(0, 0)
        assert not channel.try_acquire(0, 0)

    def test_release_passes_token(self):
        channel = TokenChannel(destination=0, num_sources=4)
        channel.try_acquire(0, 0)
        channel.release(cycle=0, busy_cycles=5)
        assert channel.token_at == 1
        assert channel.busy_until == 5
        # Channel busy: even the token holder cannot start.
        assert not channel.try_acquire(1, 3)
        assert channel.try_acquire(1, 5)

    def test_token_frozen_while_busy(self):
        channel = TokenChannel(destination=0, num_sources=4)
        channel.try_acquire(0, 0)
        channel.release(0, busy_cycles=10)
        position = channel.token_at
        channel.advance(5)
        assert channel.token_at == position

    def test_wait_counter(self):
        channel = TokenChannel(destination=0, num_sources=4)
        channel.try_acquire(3, 0)
        channel.try_acquire(2, 0)
        assert channel.token_waits == 2


class TestMwsrNetwork:
    def test_delivers_traffic(self):
        trace = uniform_random_trace(rate=0.02, duration=1_600, seed=1)
        network = MwsrNetwork(_config())
        stats = network.run(trace)
        assert stats.packets_delivered > 0
        assert stats.flits_delivered > stats.packets_delivered  # responses

    def test_deterministic(self):
        trace = uniform_random_trace(rate=0.02, duration=1_600, seed=2)
        a = MwsrNetwork(_config(), seed=4).run(trace)
        b = MwsrNetwork(_config(), seed=4).run(trace)
        assert a.throughput_flits_per_cycle() == b.throughput_flits_per_cycle()

    def test_token_waits_accumulate(self):
        trace = uniform_random_trace(rate=0.1, duration=1_600, seed=3)
        network = MwsrNetwork(_config())
        network.run(trace)
        assert network.total_token_waits() > 0

    def test_laser_energy_constant_state(self):
        trace = uniform_random_trace(rate=0.01, duration=1_600, seed=1)
        network = MwsrNetwork(_config(), static_state=64)
        stats = network.run(trace)
        # 16 cluster channels + 8 L3 channels at 1.16 W.
        assert stats.mean_laser_power_w(2.0) == pytest.approx(
            24 * 1.16, rel=0.01
        )

    def test_unknown_state_rejected(self):
        with pytest.raises(ValueError):
            MwsrNetwork(_config(), static_state=24)

    def test_rswmr_latency_beats_token_mwsr(self):
        """PEARL's reservation assist avoids token-rotation latency, so
        mean latency is lower on the same moderate-load trace."""
        trace = uniform_random_trace(rate=0.03, duration=2_100, seed=5)
        config = _config(measure=2_000)
        pearl = PearlNetwork(config, seed=7).run(trace)
        mwsr = MwsrNetwork(config, seed=7).run(trace)
        assert pearl.stats.mean_latency() < mwsr.mean_latency()

    def test_drains_given_quiet_tail(self):
        trace = uniform_random_trace(rate=0.01, duration=500, seed=6)
        network = MwsrNetwork(
            PearlConfig(
                simulation=SimulationConfig(
                    warmup_cycles=0, measure_cycles=6_000
                )
            )
        )
        stats = network.run(trace)
        injected = sum(c.packets_injected for c in stats.counters.values())
        assert stats.packets_delivered == injected
