"""Array-engine telemetry identity: instrumentation changes nothing.

The array core is a first-class instrumented path — ``run(engine=
"array")`` under an enabled session executes on the ArrayCore (no
silent downgrade to the fast engine) and must satisfy two identities:

* **Simulation identity**: an instrumented array run is bit-identical
  to an uninstrumented array run (telemetry is observational).
* **Telemetry identity**: the metrics registry, the window series and
  the deterministic (non-wall) trace events of an array run equal
  those of a fast-engine run — the window-close flow is shared, and
  the array core's lazy DBA settlement replays the scalar per-cycle
  split tallies exactly.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro import obs
from repro.config import (
    MLConfig,
    PearlConfig,
    PowerScalingConfig,
    SimulationConfig,
)
from repro.faults import (
    BitErrorFault,
    FaultSchedule,
    LaserDroopFault,
    WavelengthFault,
)
from repro.ml.features import NUM_FEATURES
from repro.ml.ridge import RidgeRegression
from repro.noc.network import PearlNetwork
from repro.noc.router import PowerPolicyKind
from repro.traffic.benchmarks import CPU_BENCHMARKS, GPU_BENCHMARKS
from repro.traffic.synthetic import generate_pair_trace


@pytest.fixture(autouse=True)
def _telemetry_off():
    obs.disable()
    yield
    obs.disable()


def _config(window=200):
    return PearlConfig(
        simulation=SimulationConfig(warmup_cycles=100, measure_cycles=1_500),
        power_scaling=PowerScalingConfig(reservation_window=window),
        ml=MLConfig(reservation_window=window),
    )


def _fault_schedule():
    return FaultSchedule(
        wavelength_faults=(
            WavelengthFault(wavelengths=24, router=3, start=300, end=900),
        ),
        droop_faults=(LaserDroopFault(max_state=32, router=7, start=500),),
        bit_error_faults=(BitErrorFault(rate=0.02, start=250, end=1000),),
    )


@pytest.fixture(scope="module")
def toy_model():
    rng = np.random.default_rng(0)
    model = RidgeRegression(lam=1.0)
    model.fit(rng.normal(size=(64, NUM_FEATURES)), rng.normal(size=64))
    return model


def _canonical(network, result):
    return {
        "stats": result.stats.to_dict(),
        "residency": result.state_residency,
        "mean_laser_power_w": result.mean_laser_power_w,
        "laser_stall_cycles": result.laser_stall_cycles,
        "ml_predictions": result.ml_predictions,
        "ml_labels": result.ml_labels,
        "sequence": network._sequence,
        "backlog": network.injection_backlog_size,
        "laser_energy": [r.laser.energy_j for r in network.routers],
        "crc_errors": result.stats.crc_errors,
        "retransmissions": result.stats.retransmissions,
    }


def _run(config, engine, policy, model=None, faults=None, instrumented=True):
    """One run; returns (canonical result, registry, series, events)."""
    trace = generate_pair_trace(
        CPU_BENCHMARKS["fluidanimate"],
        GPU_BENCHMARKS["dct"],
        config.architecture,
        config.simulation.total_cycles,
        11,
    )
    network = PearlNetwork(
        config=config,
        power_policy=policy,
        ml_model=model if policy is PowerPolicyKind.ML else None,
        seed=3,
        faults=faults,
    )
    if not instrumented:
        result = network.run(trace, engine=engine)
        return _canonical(network, result), None, None, None
    with obs.session():
        result = network.run(trace, engine=engine)
        registry = obs.OBS.registry.snapshot(include_volatile=False)
        series = obs.OBS.series.arrays()
        events = obs.OBS.tracer.snapshot(include_wall=False)
    return _canonical(network, result), registry, series, events


def _assert_series_equal(a, b):
    assert set(a) == set(b)
    for column in a:
        if a[column].dtype.kind == "f":
            assert np.array_equal(a[column], b[column], equal_nan=True), column
        else:
            assert np.array_equal(a[column], b[column]), column


SCENARIOS = {
    "reactive": dict(policy=PowerPolicyKind.REACTIVE),
    "ml-quantized": dict(policy=PowerPolicyKind.ML, quantization="q4.12"),
    "faulted": dict(policy=PowerPolicyKind.STATIC, faulted=True),
    "ml-faulted": dict(policy=PowerPolicyKind.ML, faulted=True),
}


def _scenario(name, toy_model):
    spec = SCENARIOS[name]
    config = _config()
    if spec.get("quantization"):
        config = config.replace(
            ml=replace(config.ml, quantization=spec["quantization"])
        )
    faults = _fault_schedule() if spec.get("faulted") else None
    return config, spec["policy"], toy_model, faults


class TestArrayInstrumentedIdentity:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_instrumented_array_matches_bare_array(self, name, toy_model):
        config, policy, model, faults = _scenario(name, toy_model)
        instrumented, _, _, _ = _run(
            config, "array", policy, model, faults, instrumented=True
        )
        bare, _, _, _ = _run(
            config, "array", policy, model, faults, instrumented=False
        )
        assert instrumented == bare

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_array_telemetry_matches_fast(self, name, toy_model):
        config, policy, model, faults = _scenario(name, toy_model)
        result_a, registry_a, series_a, events_a = _run(
            config, "array", policy, model, faults
        )
        result_f, registry_f, series_f, events_f = _run(
            config, "fast", policy, model, faults
        )
        assert result_a == result_f
        assert registry_a == registry_f
        _assert_series_equal(series_a, series_f)
        assert events_a == events_f

    def test_series_has_rows_and_all_routers(self, toy_model):
        config, policy, model, faults = _scenario("ml-quantized", toy_model)
        _, _, series, _ = _run(config, "array", policy, model, faults)
        assert len(series["cycle"]) > 0
        assert set(series["router"].tolist()) == set(
            range(config.architecture.num_routers)
        )
        # ML runs carry finite predictions in the series.
        assert np.isfinite(series["predicted"]).any()

    def test_faulted_series_carries_fault_counters(self, toy_model):
        config, policy, model, faults = _scenario("ml-faulted", toy_model)
        _, _, series, _ = _run(config, "array", policy, model, faults)
        assert int(series["crc_errors"].max()) > 0


class TestNoSilentDowngrade:
    def test_instrumented_array_never_takes_the_scalar_path(
        self, toy_model, monkeypatch
    ):
        """The old behaviour downgraded array->fast under telemetry;
        prove the scalar instrumented path is not reachable anymore."""
        config, policy, model, faults = _scenario("reactive", toy_model)

        def boom(self, trace, fast=True):  # pragma: no cover - must not run
            raise AssertionError("array run fell back to the scalar path")

        monkeypatch.setattr(PearlNetwork, "_run_instrumented", boom)
        result, _, _, _ = _run(config, "array", policy, model, faults)
        assert result["stats"]["local_packets_delivered"] > 0

    def test_engine_accounting(self, toy_model):
        config, policy, model, faults = _scenario("reactive", toy_model)
        trace = generate_pair_trace(
            CPU_BENCHMARKS["fluidanimate"],
            GPU_BENCHMARKS["dct"],
            config.architecture,
            config.simulation.total_cycles,
            11,
        )
        network = PearlNetwork(config=config, power_policy=policy, seed=3)
        with obs.session():
            network.run(trace, engine="array")
            network.run(trace, engine="fast")
            engines = dict(obs.OBS.engines)
        assert engines == {"array": 1, "fast": 1}
        assert network.last_engine_requested == "fast"
        assert network.last_engine_used == "fast"

    def test_requested_equals_used_for_array(self, toy_model):
        config, policy, model, faults = _scenario("reactive", toy_model)
        trace = generate_pair_trace(
            CPU_BENCHMARKS["fluidanimate"],
            GPU_BENCHMARKS["dct"],
            config.architecture,
            config.simulation.total_cycles,
            11,
        )
        network = PearlNetwork(config=config, power_policy=policy, seed=3)
        with obs.session():
            network.run(trace, engine="array")
        assert network.last_engine_requested == "array"
        assert network.last_engine_used == "array"
