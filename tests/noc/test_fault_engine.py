"""Fast-engine equivalence under fault injection, plus the latent-bug
regressions the fault work uncovered.

A mid-run fault onset/clear is a state transition the event-horizon
skipper must not jump over.  These tests pin ``engine="fast"`` ==
``engine="reference"`` byte-for-byte while faults fire, including on
idle-heavy traces whose quiescent spans straddle fault boundaries, and
they pin the two bug fixes directly:

* ``LaserBank.request_state`` must cancel a pending *upward*
  transition when the same (or a lower) state is re-requested — the
  fault clamp re-requests the current state at fault onset, which used
  to leave a stale pending transition stalling the link;
* ``Router.fast_forward`` must refuse to advance across an unconsumed
  fault event rather than silently integrate the wrong laser state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    MLConfig,
    PearlConfig,
    PhotonicConfig,
    PowerScalingConfig,
    ResilienceConfig,
    SimulationConfig,
)
from repro.core.power_scaling import LaserBank
from repro.faults import (
    BitErrorFault,
    FaultSchedule,
    LaserDroopFault,
    WavelengthFault,
)
from repro.ml.features import NUM_FEATURES
from repro.ml.ridge import RidgeRegression
from repro.noc.network import PearlNetwork
from repro.noc.router import PowerPolicyKind
from repro.traffic.benchmarks import CPU_BENCHMARKS, GPU_BENCHMARKS
from repro.traffic.synthetic import generate_pair_trace, uniform_random_trace
from repro.noc.packet import CoreType


def _config(measure=1_500, warmup=100, window=200, retry_limit=4):
    return PearlConfig(
        simulation=SimulationConfig(
            warmup_cycles=warmup, measure_cycles=measure
        ),
        power_scaling=PowerScalingConfig(reservation_window=window),
        ml=MLConfig(reservation_window=window),
        resilience=ResilienceConfig(retry_limit=retry_limit),
    )


def _mixed_schedule(config):
    """Wavelength loss + droop + bit errors, all onsetting mid-run."""
    total = config.simulation.total_cycles
    return FaultSchedule(
        wavelength_faults=(
            WavelengthFault(
                wavelengths=20, start=total // 4, end=3 * total // 4
            ),
            WavelengthFault(indices=(4, 9), router=2, start=total // 3),
        ),
        droop_faults=(
            LaserDroopFault(max_state=32, router=16, start=total // 2),
        ),
        bit_error_faults=(
            BitErrorFault(rate=0.002, start=total // 5, end=4 * total // 5),
        ),
        seed=7,
    )


@pytest.fixture(scope="module")
def toy_model():
    rng = np.random.default_rng(0)
    model = RidgeRegression(lam=1.0)
    model.fit(rng.normal(size=(64, NUM_FEATURES)), rng.normal(size=64))
    return model


def _canonical(network, result):
    return {
        "stats": result.stats.to_dict(),
        "residency": result.state_residency,
        "mean_laser_power_w": result.mean_laser_power_w,
        "laser_stall_cycles": result.laser_stall_cycles,
        "ml_predictions": result.ml_predictions,
        "sequence": network._sequence,
        "backlog": network.injection_backlog_size,
        "retransmit_queue": network.retransmit_queue_size,
        "census": network.pending_packet_census(),
        "laser_energy": [r.laser.energy_j for r in network.routers],
        "cycles_in_state": [
            r.laser.cycles_in_state for r in network.routers
        ],
        "clamp_events": [r.fault_clamp_events for r in network.routers],
    }


def _run_both(config, trace, policy, faults, model=None, seed=3):
    out = {}
    for engine in ("reference", "fast"):
        network = PearlNetwork(
            config=config,
            power_policy=policy,
            ml_model=model if policy is PowerPolicyKind.ML else None,
            seed=seed,
            faults=faults,
        )
        out[engine] = _canonical(network, network.run(trace, engine=engine))
    return out


class TestFaultedEngineEquivalence:
    @pytest.mark.parametrize("policy", list(PowerPolicyKind))
    def test_all_policies_under_mixed_faults(self, policy, toy_model):
        config = _config()
        schedule = _mixed_schedule(config)
        trace = generate_pair_trace(
            CPU_BENCHMARKS["fluidanimate"],
            GPU_BENCHMARKS["dct"],
            config.architecture,
            config.simulation.total_cycles // 2,
            seed=3,
        )
        out = _run_both(config, trace, policy, schedule, toy_model)
        assert out["reference"] == out["fast"]
        # The schedule actually did something:
        assert out["fast"]["stats"]["crc_errors"] >= 0

    def test_idle_heavy_trace_skips_across_fault_boundaries(self):
        """Quiescent spans straddle fault onset/clear; skips must stop
        at the boundary, not jump it."""
        config = _config()
        trace = uniform_random_trace(
            CoreType.CPU,
            rate=0.05,
            architecture=config.architecture,
            duration=config.simulation.total_cycles // 4,
            seed=5,
        )
        # Faults fire deep in the idle tail, where the fast engine
        # would otherwise skip hundreds of cycles at a time.
        total = config.simulation.total_cycles
        schedule = FaultSchedule(
            wavelength_faults=(
                WavelengthFault(
                    wavelengths=32, start=total // 2, end=total // 2 + 333
                ),
            ),
            droop_faults=(
                LaserDroopFault(max_state=16, start=3 * total // 4),
            ),
        )
        out = _run_both(
            config, trace, PowerPolicyKind.REACTIVE, schedule
        )
        assert out["reference"] == out["fast"]
        assert sum(out["fast"]["clamp_events"]) > 0

    def test_fault_during_long_stabilization(self):
        """Fault onset lands inside a laser turn-on window."""
        config = _config(window=100).with_turn_on_ns(40.0)  # 80-cycle turn-on
        trace = uniform_random_trace(
            CoreType.GPU,
            rate=0.15,
            architecture=config.architecture,
            duration=config.simulation.total_cycles // 2,
            seed=9,
        )
        total = config.simulation.total_cycles
        schedule = FaultSchedule(
            droop_faults=(
                LaserDroopFault(
                    max_state=16, start=total // 3, end=2 * total // 3
                ),
            ),
        )
        out = _run_both(
            config, trace, PowerPolicyKind.REACTIVE, schedule
        )
        assert out["reference"] == out["fast"]

    def test_total_corruption_small_retry_budget(self):
        """rate=1.0 bit errors with retry_limit=1: every packet drops,
        invariants hold, neither engine livelocks."""
        config = _config(measure=800, warmup=0, retry_limit=1)
        trace = uniform_random_trace(
            CoreType.CPU,
            rate=0.1,
            architecture=config.architecture,
            duration=400,
            seed=3,
        )
        schedule = FaultSchedule(
            bit_error_faults=(BitErrorFault(rate=1.0, start=0),)
        )
        out = _run_both(
            config, trace, PowerPolicyKind.STATIC, schedule
        )
        assert out["reference"] == out["fast"]
        stats = out["fast"]["stats"]
        assert stats["packets_dropped"] > 0
        assert (
            stats["crc_errors"]
            == stats["retransmissions"] + stats["packets_dropped"]
        )


class TestLaserBankRegression:
    def test_equal_state_request_cancels_pending_upshift(self):
        """Re-requesting the current state mid-upshift cancels the
        pending transition and restores transmit immediately (the
        fault clamp relies on this at fault onset)."""
        bank = LaserBank(PhotonicConfig(), initial_state=16)
        bank.request_state(64)
        assert bank.is_stabilizing
        assert not bank.can_transmit
        bank.request_state(16)
        assert bank.state == 16
        assert not bank.is_stabilizing
        assert bank.can_transmit

    def test_downshift_during_upshift_cancels_pending(self):
        bank = LaserBank(PhotonicConfig(), initial_state=32)
        bank.request_state(64)
        bank.request_state(8)
        assert bank.state == 8
        assert bank.can_transmit
        # And the cancelled 64-state never becomes active:
        for _ in range(20):
            bank.tick()
        assert bank.state == 8


class TestFastForwardGuard:
    def test_fast_forward_refuses_to_cross_fault_event(self):
        config = _config(measure=400, warmup=0)
        schedule = FaultSchedule(
            wavelength_faults=(WavelengthFault(wavelengths=8, start=100),)
        )
        network = PearlNetwork(config=config, seed=3, faults=schedule)
        router = network.routers[0]
        with pytest.raises(ValueError, match="fault transition"):
            router.fast_forward(50, 100)

    def test_skip_bound_stops_at_fault_event(self):
        config = _config(measure=400, warmup=0, window=1_000)
        schedule = FaultSchedule(
            droop_faults=(LaserDroopFault(max_state=32, start=77),)
        )
        network = PearlNetwork(config=config, seed=3, faults=schedule)
        router = network.routers[0]
        assert router.skip_bound(0) <= 77
