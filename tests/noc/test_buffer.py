"""Tests for repro.noc.buffer, including property-based invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.buffer import (
    BufferFullError,
    InputBuffer,
    PartitionedBuffer,
    VirtualChannelBuffer,
)
from repro.noc.packet import CacheLevel, CoreType, make_request, make_response


def _req(core=CoreType.CPU, flits=1, src=0, dst=1):
    level = (
        CacheLevel.CPU_L2_DOWN if core is CoreType.CPU else CacheLevel.GPU_L2_DOWN
    )
    if flits == 1:
        return make_request(src, dst, core, level)
    return make_response(src, dst, core, level, size_flits=flits)


class TestInputBuffer:
    def test_starts_empty(self):
        buf = InputBuffer(8)
        assert buf.is_empty
        assert buf.occupancy == 0.0
        assert buf.free_slots == 8

    def test_push_accounts_slots(self):
        buf = InputBuffer(8)
        buf.push(_req(flits=5))
        assert buf.occupied_slots == 5
        assert buf.occupancy == pytest.approx(5 / 8)

    def test_fifo_order(self):
        buf = InputBuffer(8)
        first, second = _req(), _req()
        buf.push(first)
        buf.push(second)
        assert buf.pop() is first
        assert buf.pop() is second

    def test_peek_does_not_remove(self):
        buf = InputBuffer(8)
        packet = _req()
        buf.push(packet)
        assert buf.peek() is packet
        assert len(buf) == 1

    def test_overflow_raises(self):
        buf = InputBuffer(4)
        buf.push(_req(flits=4))
        with pytest.raises(BufferFullError):
            buf.push(_req())

    def test_can_accept_checks_size(self):
        buf = InputBuffer(4)
        buf.push(_req(flits=2))
        assert buf.can_accept(_req(flits=2))
        assert not buf.can_accept(_req(flits=3))

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            InputBuffer(4).pop()

    def test_drain_empties(self):
        buf = InputBuffer(8)
        for _ in range(3):
            buf.push(_req())
        assert len(list(buf.drain())) == 3
        assert buf.is_empty

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            InputBuffer(0)

    @given(st.lists(st.integers(min_value=1, max_value=5), max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_slot_accounting_invariant(self, sizes):
        """occupied_slots always equals the sum of queued packet sizes."""
        buf = InputBuffer(1000)
        queued = []
        for size in sizes:
            packet = _req(flits=size)
            buf.push(packet)
            queued.append(packet)
        assert buf.occupied_slots == sum(p.size_flits for p in queued)
        while queued:
            buf.pop()
            queued.pop(0)
            assert buf.occupied_slots == sum(p.size_flits for p in queued)
        assert buf.is_empty


class TestPartitionedBuffer:
    def test_routes_by_core_type(self):
        buf = PartitionedBuffer(8, 8)
        buf.push(_req(CoreType.CPU))
        buf.push(_req(CoreType.GPU, flits=5))
        assert len(buf.cpu) == 1
        assert len(buf.gpu) == 1
        assert buf.gpu.occupied_slots == 5

    def test_occupancies_independent(self):
        buf = PartitionedBuffer(10, 10)
        buf.push(_req(CoreType.CPU, flits=5))
        assert buf.cpu_occupancy == pytest.approx(0.5)
        assert buf.gpu_occupancy == 0.0

    def test_combined_occupancy(self):
        buf = PartitionedBuffer(10, 10)
        buf.push(_req(CoreType.CPU, flits=5))
        buf.push(_req(CoreType.GPU, flits=5))
        assert buf.combined_occupancy == pytest.approx(0.5)

    def test_total_packets(self):
        buf = PartitionedBuffer(10, 10)
        buf.push(_req(CoreType.CPU))
        buf.push(_req(CoreType.GPU))
        assert buf.total_packets == 2
        assert not buf.is_empty

    def test_can_accept_respects_pool(self):
        buf = PartitionedBuffer(1, 10)
        buf.push(_req(CoreType.CPU))
        assert not buf.can_accept(_req(CoreType.CPU))
        assert buf.can_accept(_req(CoreType.GPU))


class TestVirtualChannelBuffer:
    def _flits(self, n=3):
        return list(_req(flits=n).flits())

    def test_idle_accepts_only_head(self):
        vc = VirtualChannelBuffer(4)
        head, body, tail = self._flits()
        assert vc.can_accept(head)
        assert not vc.can_accept(body)

    def test_allocation_follows_packet(self):
        vc = VirtualChannelBuffer(4)
        head, body, tail = self._flits()
        vc.push(head)
        other_head = next(_req(flits=2).flits())
        assert not vc.can_accept(other_head)
        assert vc.can_accept(body)

    def test_tail_pop_releases_vc(self):
        vc = VirtualChannelBuffer(4)
        for flit in self._flits():
            vc.push(flit)
        while not vc.is_empty:
            vc.pop()
        assert vc.is_idle

    def test_depth_enforced(self):
        vc = VirtualChannelBuffer(2)
        flits = list(_req(flits=3).flits())
        vc.push(flits[0])
        vc.push(flits[1])
        assert not vc.can_accept(flits[2])
        with pytest.raises(BufferFullError):
            vc.push(flits[2])

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            VirtualChannelBuffer(2).pop()

    def test_zero_depth_rejected(self):
        with pytest.raises(ValueError):
            VirtualChannelBuffer(0)

    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_fifo_through_vc(self, size):
        """Flits exit in exactly the order they entered."""
        vc = VirtualChannelBuffer(size + 1)
        flits = list(_req(flits=size).flits())
        for flit in flits:
            vc.push(flit)
        out = [vc.pop() for _ in range(size)]
        assert [f.index for f in out] == list(range(size))
        assert vc.is_idle
