"""Tests for repro.noc.topology — the chip floorplan and link geometry."""

import pytest

from repro.config import ArchitectureConfig, OpticalConfig
from repro.noc.topology import ChipFloorplan, Placement, per_router_link_budget


@pytest.fixture
def floorplan():
    return ChipFloorplan()


class TestPlacement:
    def test_manhattan_distance(self):
        a = Placement(0, 0.0, 0.0)
        b = Placement(1, 3.0, 4.0)
        assert a.manhattan_mm(b) == pytest.approx(7.0)

    def test_symmetric(self):
        a = Placement(0, 1.0, 2.0)
        b = Placement(1, 5.0, 0.0)
        assert a.manhattan_mm(b) == b.manhattan_mm(a)


class TestFloorplan:
    def test_seventeen_placements(self, floorplan):
        for router_id in range(17):
            assert floorplan.placement(router_id).router_id == router_id

    def test_tile_pitch_from_table2(self, floorplan):
        """25 + 2.1 mm^2 tile -> ~5.2 mm pitch."""
        assert floorplan.tile_pitch_mm == pytest.approx(5.206, abs=0.01)

    def test_die_dimensions(self, floorplan):
        assert floorplan.die_width_mm == pytest.approx(
            4 * floorplan.tile_pitch_mm
        )
        assert floorplan.die_width_mm == floorplan.die_height_mm

    def test_l3_at_die_centre(self, floorplan):
        l3 = floorplan.placement(16)
        assert l3.x_mm == pytest.approx(floorplan.die_width_mm / 2)
        assert l3.y_mm == pytest.approx(floorplan.die_height_mm / 2)

    def test_corner_to_corner_longest(self, floorplan):
        lengths = floorplan.all_link_lengths()
        assert max(lengths.values()) == pytest.approx(
            lengths[(0, 15)]
        )

    def test_link_lengths_symmetric(self, floorplan):
        lengths = floorplan.all_link_lengths()
        for (a, b), length in lengths.items():
            assert lengths[(b, a)] == pytest.approx(length)

    def test_worst_case_from_corner(self, floorplan):
        """Router 0's farthest reader is the opposite corner."""
        assert floorplan.worst_case_link_mm(0) == pytest.approx(
            floorplan.link_length_mm(0, 15)
        )

    def test_centre_router_has_short_worst_case(self, floorplan):
        assert floorplan.worst_case_link_mm(5) < floorplan.worst_case_link_mm(0)

    def test_propagation_within_one_cycle(self, floorplan):
        """10.45 ps/mm on a ~21 mm die stays under one 500 ps cycle."""
        for destination in range(1, 17):
            assert floorplan.propagation_cycles(0, destination) == 1

    def test_uneven_grid_rejected(self):
        with pytest.raises(ValueError):
            ChipFloorplan(ArchitectureConfig(num_clusters=10), grid_width=4)

    def test_unknown_router_id_rejected(self, floorplan):
        with pytest.raises(KeyError):
            floorplan.placement(17)


class _SparseL3Architecture:
    """An architecture whose L3 id is not ``num_clusters`` (e.g. an id
    space with gaps reserved for future routers)."""

    num_clusters = 9
    l3_router_id = 42


class _CollidingL3Architecture:
    num_clusters = 9
    l3_router_id = 3


class TestNonDefaultL3Id:
    """Placement lookup is keyed by router id, not list position.

    Regression: ``placement()`` used to index the placement list, which
    equals the router id only when ``l3_router_id == num_clusters`` —
    any other L3 id silently returned a cluster tile (or raised
    IndexError) for the L3 router.
    """

    def test_l3_placement_found_by_id(self):
        plan = ChipFloorplan(_SparseL3Architecture())
        l3 = plan.placement(42)
        assert l3.router_id == 42
        assert l3.x_mm == pytest.approx(plan.die_width_mm / 2)
        assert l3.y_mm == pytest.approx(plan.die_height_mm / 2)

    def test_cluster_placements_unaffected(self):
        plan = ChipFloorplan(_SparseL3Architecture())
        default = ChipFloorplan(ArchitectureConfig(num_clusters=9))
        for router_id in range(9):
            assert plan.placement(router_id) == default.placement(router_id)

    def test_gap_ids_are_absent_not_misrouted(self):
        plan = ChipFloorplan(_SparseL3Architecture())
        with pytest.raises(KeyError):
            plan.placement(9)

    def test_worst_case_budget_uses_l3_spur(self):
        plan = ChipFloorplan(_SparseL3Architecture())
        budget = per_router_link_budget(plan, source=42)
        assert budget.required_output_mw > 0

    def test_colliding_l3_id_rejected(self):
        with pytest.raises(ValueError):
            ChipFloorplan(_CollidingL3Architecture())


class TestPerRouterBudget:
    def test_corner_needs_more_power_than_centre(self, floorplan):
        corner = per_router_link_budget(floorplan, source=0)
        centre = per_router_link_budget(floorplan, source=5)
        assert corner.required_output_mw > centre.required_output_mw

    def test_budget_close_to_table5_default(self, floorplan):
        """The flat 6 cm Table V assumption brackets the floorplan."""
        from repro.noc.photonic import PhotonicLinkModel
        from repro.config import PhotonicConfig

        flat = PhotonicLinkModel(OpticalConfig(), PhotonicConfig()).budget
        derived = per_router_link_budget(floorplan, source=0)
        assert derived.loss_db == pytest.approx(flat.loss_db, rel=0.6)
