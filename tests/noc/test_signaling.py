"""Multilevel signaling (NRZ vs PAM4) across the photonic stack.

PAM4 packs two bits per symbol, so every wavelength state serializes a
flit in at most half the NRZ cycles — but the collapsed eye needs
~4.8 dB more optical power at the same BER.  These tests pin both sides
of that trade at every layer it touches: the config's ladder
capacity/power methods, the link budget (and through it the PROTEUS
loss caps), and the per-flit energy model.  NRZ must remain bit-for-bit
the paper's arithmetic.
"""

from __future__ import annotations

import math

import pytest

from repro.config import ArchitectureConfig, OpticalConfig, PhotonicConfig
from repro.core.proteus import loss_capped_state
from repro.core.wavelength import WavelengthLadder
from repro.noc.photonic import LinkBudget, PhotonicLinkModel
from repro.noc.topology import ChipFloorplan, per_router_link_budget

NRZ = PhotonicConfig(signaling="nrz")
PAM4 = PhotonicConfig(signaling="pam4")
#: 4.8 dB as a linear power factor (~3.02x).
PENALTY_FACTOR = 10.0 ** (4.8 / 10.0)


class TestConfig:
    def test_default_is_nrz(self):
        config = PhotonicConfig()
        assert config.signaling == "nrz"
        assert config.bits_per_symbol == 1
        assert config.signaling_penalty_db() == 0.0

    def test_pam4_symbol_packing(self):
        assert PAM4.bits_per_symbol == 2
        assert PAM4.signaling_penalty_db() == pytest.approx(4.8)

    def test_unknown_signaling_rejected(self):
        with pytest.raises(ValueError, match="signaling"):
            PhotonicConfig(signaling="qam16")

    def test_serialization_halves_per_state(self):
        """ceil(nrz/2) cycles per state: 2,4,4,8,16 -> 1,2,2,4,8."""
        nrz_cycles = {64: 2, 48: 4, 32: 4, 16: 8, 8: 16}
        pam4_cycles = {64: 1, 48: 2, 32: 2, 16: 4, 8: 8}
        for state in NRZ.wavelength_states:
            assert NRZ.state_serialization_cycles(state) == nrz_cycles[state]
            assert (
                PAM4.state_serialization_cycles(state) == pam4_cycles[state]
            )
            assert PAM4.state_serialization_cycles(state) == max(
                1, math.ceil(nrz_cycles[state] / 2)
            )

    def test_nrz_power_matches_paper_constants(self):
        expected = {64: 1.16, 48: 0.871, 32: 0.581, 16: 0.29, 8: 0.145}
        for state, power in expected.items():
            assert NRZ.state_power(state) == pytest.approx(power)

    def test_pam4_power_pays_ber_penalty(self):
        for state in NRZ.wavelength_states:
            assert PAM4.state_power(state) == pytest.approx(
                NRZ.state_power(state) * PENALTY_FACTOR
            )


class TestLinkBudget:
    def test_penalty_adds_like_loss(self):
        base = LinkBudget(loss_db=10.0, receiver_sensitivity_dbm=-17.0)
        pam4 = LinkBudget(
            loss_db=10.0,
            receiver_sensitivity_dbm=-17.0,
            signaling_penalty_db=4.8,
        )
        assert pam4.required_output_dbm == pytest.approx(
            base.required_output_dbm + 4.8
        )
        assert pam4.required_output_mw == pytest.approx(
            base.required_output_mw * PENALTY_FACTOR
        )

    def test_per_router_budget_carries_signaling(self):
        floorplan = ChipFloorplan(ArchitectureConfig())
        optical = OpticalConfig()
        nrz = per_router_link_budget(floorplan, optical, source=3)
        pam4 = per_router_link_budget(
            floorplan, optical, source=3, photonic=PAM4
        )
        assert pam4.required_output_dbm == pytest.approx(
            nrz.required_output_dbm + 4.8
        )

    def test_pam4_tightens_proteus_cap(self):
        """The 3x per-wavelength output cost lowers the loss-capped
        ladder state at a fixed laser budget."""
        floorplan = ChipFloorplan(ArchitectureConfig())
        optical = OpticalConfig()
        ladder = WavelengthLadder(NRZ)
        nrz_budget = per_router_link_budget(floorplan, optical, source=0)
        pam4_budget = per_router_link_budget(
            floorplan, optical, source=0, photonic=PAM4
        )
        # Pick a laser budget that sustains the full ladder under NRZ.
        laser_mw = nrz_budget.required_output_mw * 64
        nrz_cap = loss_capped_state(nrz_budget, ladder, laser_mw)
        pam4_cap = loss_capped_state(pam4_budget, ladder, laser_mw)
        assert nrz_cap == 64
        assert pam4_cap < nrz_cap


class TestEnergyModel:
    def test_pam4_halves_modulator_symbols(self):
        optical = OpticalConfig()
        nrz = PhotonicLinkModel(optical, NRZ)
        pam4 = PhotonicLinkModel(optical, PAM4)
        assert pam4.modulation_energy_j_per_flit() == pytest.approx(
            nrz.modulation_energy_j_per_flit() / 2
        )

    def test_pam4_receiver_penalty(self):
        optical = OpticalConfig()
        nrz = PhotonicLinkModel(optical, NRZ)
        pam4 = PhotonicLinkModel(optical, PAM4)
        assert pam4.receiver_energy_j_per_flit() == pytest.approx(
            nrz.receiver_energy_j_per_flit() * PENALTY_FACTOR
        )

    def test_pam4_laser_draw(self):
        optical = OpticalConfig()
        nrz = PhotonicLinkModel(optical, NRZ)
        pam4 = PhotonicLinkModel(optical, PAM4)
        for wl in (8, 16, 32, 48, 64):
            assert pam4.laser_electrical_power_w(wl) == pytest.approx(
                nrz.laser_electrical_power_w(wl) * PENALTY_FACTOR
            )
            # Trimming is thermal, not optical: format-independent.
            assert pam4.trimming_power_w(wl) == nrz.trimming_power_w(wl)
