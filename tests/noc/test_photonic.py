"""Tests for repro.noc.photonic — the link power model."""

import pytest

from repro.config import OpticalConfig, PhotonicConfig
from repro.noc.photonic import (
    LinkBudget,
    PhotonicLinkModel,
    dbm_to_mw,
    mw_to_dbm,
)


class TestUnitConversions:
    def test_zero_dbm_is_one_mw(self):
        assert dbm_to_mw(0.0) == pytest.approx(1.0)

    def test_round_trip(self):
        for mw in (0.01, 1.0, 37.5):
            assert dbm_to_mw(mw_to_dbm(mw)) == pytest.approx(mw)

    def test_ten_db_is_factor_ten(self):
        assert dbm_to_mw(10.0) == pytest.approx(10.0)

    def test_nonpositive_power_rejected(self):
        with pytest.raises(ValueError):
            mw_to_dbm(0.0)


class TestLinkBudget:
    def test_required_output_covers_loss(self):
        budget = LinkBudget(loss_db=8.0, receiver_sensitivity_dbm=-15.0)
        assert budget.required_output_dbm == pytest.approx(-15.0 + 8.0 + 3.0)

    def test_output_mw_positive(self):
        budget = LinkBudget(loss_db=10.0, receiver_sensitivity_dbm=-15.0)
        assert budget.required_output_mw > 0


class TestPhotonicLinkModel:
    @pytest.fixture
    def model(self):
        return PhotonicLinkModel(OpticalConfig(), PhotonicConfig())

    def test_laser_power_scales_linearly(self, model):
        p16 = model.laser_electrical_power_w(16)
        p64 = model.laser_electrical_power_w(64)
        assert p64 == pytest.approx(4 * p16)

    def test_laser_power_order_of_magnitude(self, model):
        """The budget-derived 64 WL power lands near the paper's 1.16 W."""
        p64 = model.laser_electrical_power_w(64)
        assert 0.1 < p64 < 10.0

    def test_trimming_scales_with_state(self, model):
        assert model.trimming_power_w(64) == pytest.approx(
            4 * model.trimming_power_w(16)
        )

    def test_trimming_heats_both_ring_banks(self, model):
        assert model.trimming_power_w(64) == pytest.approx(128 * 26e-6)

    def test_modulation_energy_per_flit(self, model):
        expected = 500e-6 / 16e9 * 128
        assert model.modulation_energy_j_per_flit() == pytest.approx(expected)

    def test_receiver_energy_per_flit(self, model):
        assert model.receiver_energy_j_per_flit() == pytest.approx(
            0.1e-12 * 128
        )

    def test_static_power_combines(self, model):
        assert model.static_power_w(32) == pytest.approx(
            model.laser_electrical_power_w(32) + model.trimming_power_w(32)
        )

    def test_zero_wavelengths_rejected(self, model):
        with pytest.raises(ValueError):
            model.laser_electrical_power_w(0)
