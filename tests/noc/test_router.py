"""Tests for repro.noc.router — the PEARL router microarchitecture."""

import pytest

from repro.config import PearlConfig, PowerScalingConfig, SimulationConfig
from repro.noc.packet import CacheLevel, CoreType, make_request, make_response
from repro.noc.router import (
    LOCAL_CROSSBAR_CYCLES,
    PIPELINE_OVERHEAD_CYCLES,
    PearlRouter,
    PowerPolicyKind,
)


def _router(
    router_id=0,
    policy=PowerPolicyKind.STATIC,
    static_state=None,
    dynamic=True,
    window=100,
):
    config = PearlConfig(
        power_scaling=PowerScalingConfig(reservation_window=window)
    )
    return PearlRouter(
        router_id=router_id,
        config=config,
        policy_kind=policy,
        use_dynamic_bandwidth=dynamic,
        static_state=static_state,
    )


def _cpu_req(src=0, dst=16):
    return make_request(src, dst, CoreType.CPU, CacheLevel.CPU_L2_DOWN)


def _gpu_req(src=0, dst=16):
    return make_request(src, dst, CoreType.GPU, CacheLevel.GPU_L2_DOWN)


class TestInjection:
    def test_inject_fills_buffers(self):
        router = _router()
        router.inject(_cpu_req(), cycle=0)
        assert router.buffers.total_packets == 1
        assert router.features.injected_this_window == 1

    def test_can_inject_respects_capacity(self):
        router = _router()
        big = make_response(0, 16, CoreType.CPU, CacheLevel.CPU_L2_DOWN, size_flits=64)
        router.inject(big, cycle=0)
        assert not router.can_inject(_cpu_req())
        assert router.can_inject(_gpu_req())


class TestTransmission:
    def test_remote_packet_transmits(self):
        router = _router()
        router.inject(_cpu_req(), cycle=0)
        started = router.transmit(0)
        assert len(started) == 1
        tx = started[0]
        # 64 WL, full CPU share (GPU idle): 2 cycles + pipeline overhead.
        assert tx.arrival_cycle == 2 + PIPELINE_OVERHEAD_CYCLES

    def test_local_packet_uses_crossbar(self):
        router = _router()
        local = make_request(0, 0, CoreType.CPU, CacheLevel.CPU_L1_DATA)
        router.inject(local, cycle=0)
        started = router.transmit(0)
        assert started[0].arrival_cycle == LOCAL_CROSSBAR_CYCLES

    def test_simultaneous_cpu_gpu_transmission(self):
        """Both core types transmit at once on their shares."""
        router = _router()
        router.inject(_cpu_req(), cycle=0)
        router.inject(_gpu_req(), cycle=0)
        started = router.transmit(0)
        assert len(started) == 2

    def test_engine_busy_blocks_next_packet(self):
        router = _router()
        router.inject(_cpu_req(), cycle=0)
        router.inject(_cpu_req(), cycle=0)
        assert len(router.transmit(0)) == 1
        assert len(router.transmit(1)) == 0

    def test_engine_frees_after_serialization(self):
        router = _router()
        router.inject(_cpu_req(), cycle=0)
        router.inject(_cpu_req(), cycle=0)
        router.transmit(0)
        # CPU/GPU split 100/0 (GPU empty): 2 cycles serialization.
        assert len(router.transmit(2)) == 1

    def test_split_bandwidth_slows_serialization(self):
        """With both types queued, each side gets a fraction."""
        router = _router()
        router.inject(_cpu_req(), cycle=0)
        router.inject(_gpu_req(), cycle=0)
        started = router.transmit(0)
        by_type = {t.packet.core_type: t for t in started}
        # CPU 75% of 64 WL: ceil(2/0.75)=3; GPU 25%: ceil(2/0.25)=8.
        assert by_type[CoreType.CPU].arrival_cycle == 3 + PIPELINE_OVERHEAD_CYCLES
        assert by_type[CoreType.GPU].arrival_cycle == 8 + PIPELINE_OVERHEAD_CYCLES

    def test_fcfs_even_split_always(self):
        router = _router(dynamic=False)
        router.inject(_cpu_req(), cycle=0)
        started = router.transmit(0)
        # FCFS: CPU share stays 50% even with GPU idle -> ceil(2/0.5)=4.
        assert started[0].arrival_cycle == 4 + PIPELINE_OVERHEAD_CYCLES

    def test_low_state_slows_transmission(self):
        router = _router(static_state=16)
        router.inject(_cpu_req(), cycle=0)
        started = router.transmit(0)
        assert started[0].arrival_cycle == 8 + PIPELINE_OVERHEAD_CYCLES

    def test_stabilizing_laser_blocks_transmit(self):
        router = _router(policy=PowerPolicyKind.REACTIVE)
        router.laser.request_state(8)
        router.laser.request_state(64)  # upscale -> dark link
        router.inject(_cpu_req(), cycle=0)
        assert router.transmit(0) == []

    def test_local_traffic_ignores_laser_state(self):
        router = _router(policy=PowerPolicyKind.REACTIVE)
        router.laser.request_state(8)
        router.laser.request_state(64)
        local = make_request(0, 0, CoreType.CPU, CacheLevel.CPU_L1_DATA)
        router.inject(local, cycle=0)
        assert len(router.transmit(0)) == 1


class TestEjection:
    def test_receive_and_drain(self):
        router = _router()
        delivered = []
        packet = make_response(16, 0, CoreType.CPU, CacheLevel.L3)
        router.receive(packet)
        router.drain_ejection(5, lambda p, c: delivered.append((p, c)))
        assert delivered == [(packet, 5)]

    def test_drain_rate_limited(self):
        router = _router()
        delivered = []
        for _ in range(6):
            router.receive(make_response(16, 0, CoreType.CPU, CacheLevel.L3))
        router.drain_ejection(0, lambda p, c: delivered.append(p))
        assert len(delivered) == 2  # EJECTION_DRAIN_PER_CYCLE

    def test_backlog_retried(self):
        router = _router()
        # Overfill the CPU ejection pool (capacity 64 slots, 5 flits each).
        for _ in range(14):
            router.receive(make_response(16, 0, CoreType.CPU, CacheLevel.L3))
        assert router._ejection_backlog
        delivered = []
        for cycle in range(40):
            router.drain_ejection(cycle, lambda p, c: delivered.append(p))
        assert len(delivered) == 14
        assert not router._ejection_backlog


class TestWindowing:
    def test_static_router_still_closes_windows(self):
        """Feature collection needs windows even without scaling."""
        router = _router(policy=PowerPolicyKind.STATIC, window=50)
        assert router.window_boundary(0)
        assert router.window_boundary(50)
        assert not router.window_boundary(25)

    def test_reactive_scaler_changes_state(self):
        router = _router(policy=PowerPolicyKind.REACTIVE, window=50)
        for cycle in range(51):
            router.tick_control(cycle)
        # Idle buffers the whole window -> lowest state.
        assert router.laser.state == 8

    def test_random_policy_changes_state_eventually(self):
        router = _router(policy=PowerPolicyKind.RANDOM, window=20)
        seen = set()
        for cycle in range(400):
            router.tick_control(cycle)
            seen.add(router.laser.state)
        assert len(seen) > 1
        assert 8 not in seen  # random collection excludes the low state

    def test_collection_hook_receives_prev_features(self):
        router = _router(policy=PowerPolicyKind.STATIC, window=50)
        samples = []
        router.collection_hook = lambda feats, label: samples.append(
            (feats, label)
        )
        for cycle in range(101):
            if cycle == 10:
                router.inject(_cpu_req(), cycle=cycle)
            router.tick_control(cycle)
        # Boundaries at 0, 50, 100: the hook fires at 50 and 100.
        assert len(samples) == 2
        # The injection at cycle 10 labels the features snapped at 0.
        assert samples[0][1] == 1.0
        assert samples[1][1] == 0.0

    def test_ml_policy_requires_model(self):
        with pytest.raises(ValueError):
            _router(policy=PowerPolicyKind.ML)

    def test_reset_power_stats(self):
        router = _router()
        for cycle in range(10):
            router.tick_control(cycle)
        router.reset_power_stats()
        assert router.laser.total_cycles() == 0
        assert router.laser.energy_j == 0.0


class TestParallelLinks:
    def _l3_router(self, parallel=8):
        config = PearlConfig(
            power_scaling=PowerScalingConfig(reservation_window=100)
        )
        return PearlRouter(
            router_id=config.architecture.l3_router_id,
            config=config,
            policy_kind=PowerPolicyKind.STATIC,
            parallel_links=parallel,
        )

    def test_l3_flag_set(self):
        assert self._l3_router().is_l3

    def test_parallel_engines_transmit_concurrently(self):
        """The banked L3 can start several responses in one cycle."""
        router = self._l3_router(parallel=4)
        for _ in range(6):
            router.inject(
                make_response(16, 0, CoreType.CPU, CacheLevel.L3), cycle=0
            )
        started = router.transmit(0)
        assert len(started) == 4  # one per CPU link slice

    def test_single_link_serialises(self):
        router = _router()
        for _ in range(3):
            router.inject(
                make_response(0, 16, CoreType.CPU, CacheLevel.CPU_L2_DOWN),
                cycle=0,
            )
        assert len(router.transmit(0)) == 1

    def test_invalid_parallel_links(self):
        config = PearlConfig()
        with pytest.raises(ValueError):
            PearlRouter(
                router_id=0,
                config=config,
                policy_kind=PowerPolicyKind.STATIC,
                parallel_links=0,
            )
