"""Fast-engine equivalence: event-horizon skipping is bit-identical.

The fast engine (``PearlNetwork.run(trace, engine="fast")``) may only
differ from the reference cycle-by-cycle engine in wall time.  These
tests run the same trace through both engines across every power
policy, both bandwidth allocators, multiple seeds, both L3 link-bank
widths and (via hypothesis) random traces, and require byte-equal
statistics, wavelength-state residencies, laser energy, ML prediction
streams and injection-backlog state.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    MLConfig,
    PearlConfig,
    PowerScalingConfig,
    SimulationConfig,
)
from repro.ml.features import NUM_FEATURES
from repro.ml.ridge import RidgeRegression
from repro.noc.network import PearlNetwork
from repro.noc.packet import CacheLevel, CoreType, PacketClass
from repro.noc.router import PowerPolicyKind
from repro.traffic.benchmarks import CPU_BENCHMARKS, GPU_BENCHMARKS
from repro.traffic.synthetic import generate_pair_trace, uniform_random_trace
from repro.traffic.trace import InjectionEvent, Trace


def _config(measure=1_500, warmup=100, window=200):
    return PearlConfig(
        simulation=SimulationConfig(
            warmup_cycles=warmup, measure_cycles=measure
        ),
        power_scaling=PowerScalingConfig(reservation_window=window),
        ml=MLConfig(reservation_window=window),
    )


@pytest.fixture(scope="module")
def toy_model():
    """A fitted ridge model (arbitrary weights; determinism is what counts)."""
    rng = np.random.default_rng(0)
    model = RidgeRegression(lam=1.0)
    model.fit(rng.normal(size=(64, NUM_FEATURES)), rng.normal(size=64))
    return model


def _canonical(network, result):
    """Everything the two engines must reproduce byte-for-byte."""
    return {
        "stats": result.stats.to_dict(),
        "residency": result.state_residency,
        "mean_laser_power_w": result.mean_laser_power_w,
        "laser_stall_cycles": result.laser_stall_cycles,
        "ml_predictions": result.ml_predictions,
        "ml_labels": result.ml_labels,
        "sequence": network._sequence,
        "backlog": network.injection_backlog_size,
        "laser_energy": [r.laser.energy_j for r in network.routers],
        "cycles_in_state": [
            r.laser.cycles_in_state for r in network.routers
        ],
        "reservations": [r.reservations_sent for r in network.routers],
    }


def _run_both(config, trace, policy, model=None, dyn=True, links=8, seed=3):
    out = {}
    for engine in ("reference", "fast"):
        network = PearlNetwork(
            config=config,
            power_policy=policy,
            use_dynamic_bandwidth=dyn,
            ml_model=model if policy is PowerPolicyKind.ML else None,
            l3_parallel_links=links,
            seed=seed,
        )
        out[engine] = _canonical(network, network.run(trace, engine=engine))
    return out


def _idle_heavy_trace(config, seed=5):
    """Traffic only in the first quarter: long quiescent spans to skip."""
    return uniform_random_trace(
        CoreType.CPU,
        rate=0.05,
        architecture=config.architecture,
        duration=config.simulation.total_cycles // 4,
        seed=seed,
    )


class TestEngineEquivalence:
    @pytest.mark.parametrize("policy", list(PowerPolicyKind))
    @pytest.mark.parametrize("dyn", [True, False])
    def test_policy_allocator_matrix(self, policy, dyn, toy_model):
        """All five policies x both allocators on an idle-heavy trace."""
        config = _config()
        trace = _idle_heavy_trace(config)
        out = _run_both(config, trace, policy, toy_model, dyn=dyn)
        assert out["reference"] == out["fast"]

    @pytest.mark.parametrize("seed", [1, 2, 9])
    @pytest.mark.parametrize(
        "policy", [PowerPolicyKind.REACTIVE, PowerPolicyKind.ML]
    )
    def test_seeds_on_benchmark_pair(self, seed, policy, toy_model):
        """Closed-loop benchmark-pair traffic across seeds."""
        config = _config(measure=1_200)
        trace = generate_pair_trace(
            CPU_BENCHMARKS["fluidanimate"],
            GPU_BENCHMARKS["dct"],
            config.architecture,
            config.simulation.total_cycles // 2,
            seed=seed,
        )
        out = _run_both(config, trace, policy, toy_model, seed=seed)
        assert out["reference"] == out["fast"]

    @pytest.mark.parametrize("links", [1, 8])
    def test_l3_parallel_link_banks(self, links, toy_model):
        """The banked L3 router's engine array fast-forwards correctly."""
        config = _config()
        trace = _idle_heavy_trace(config, seed=11)
        out = _run_both(
            config, trace, PowerPolicyKind.REACTIVE, links=links
        )
        assert out["reference"] == out["fast"]

    def test_saturated_trace(self, toy_model):
        """Quiescence (almost) never holds: the skip path stays correct."""
        config = _config(measure=1_000)
        trace = uniform_random_trace(
            CoreType.GPU,
            rate=0.4,
            architecture=config.architecture,
            duration=config.simulation.total_cycles,
            seed=5,
        )
        out = _run_both(config, trace, PowerPolicyKind.REACTIVE)
        assert out["reference"] == out["fast"]

    def test_empty_trace(self):
        """A fully idle run is one long skip (modulo window boundaries)."""
        config = _config()
        out = _run_both(
            config, Trace([], name="empty"), PowerPolicyKind.REACTIVE
        )
        assert out["reference"] == out["fast"]
        assert out["fast"]["stats"]["link_total_cycles"] > 0

    def test_unknown_engine_rejected(self):
        config = _config(measure=200, warmup=0)
        network = PearlNetwork(config=config)
        with pytest.raises(ValueError, match="unknown engine"):
            network.run(Trace([], name="empty"), engine="warp")


@st.composite
def traces(draw):
    """Small random request traces over the 17-node PEARL network."""
    n = draw(st.integers(min_value=0, max_value=50))
    events = []
    for _ in range(n):
        source = draw(st.integers(min_value=0, max_value=15))
        destination = draw(st.integers(min_value=0, max_value=16))
        core = draw(st.sampled_from([CoreType.CPU, CoreType.GPU]))
        if source == destination:
            level = (
                CacheLevel.CPU_L1_DATA
                if core is CoreType.CPU
                else CacheLevel.GPU_L1
            )
        else:
            level = (
                CacheLevel.CPU_L2_DOWN
                if core is CoreType.CPU
                else CacheLevel.GPU_L2_DOWN
            )
        events.append(
            InjectionEvent(
                cycle=draw(st.integers(min_value=0, max_value=400)),
                source=source,
                destination=destination,
                core_type=core,
                packet_class=PacketClass.REQUEST,
                cache_level=level,
            )
        )
    return Trace(events, name="random")


class TestEngineEquivalenceProperty:
    @given(
        trace=traces(),
        policy=st.sampled_from(
            [
                PowerPolicyKind.STATIC,
                PowerPolicyKind.REACTIVE,
                PowerPolicyKind.ADAPTIVE,
                PowerPolicyKind.RANDOM,
            ]
        ),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=12, deadline=None)
    def test_random_traces_bit_identical(self, trace, policy, seed):
        """Arbitrary bursty traces: both engines agree byte-for-byte."""
        config = _config(measure=1_000, warmup=50)
        out = _run_both(config, trace, policy, seed=seed)
        assert out["reference"] == out["fast"]


class TestInjectionBacklogOrdering:
    def test_backlog_preserves_fifo_order(self):
        """Packets stalled at a full input buffer inject oldest-first.

        64 CPU slots fill with the first 64 one-flit requests; the rest
        queue in the network backlog and must enter the buffer in
        creation order as the router drains.
        """
        config = _config(measure=2_000, warmup=0)
        n = 100  # > cpu_buffer_slots
        events = [
            InjectionEvent(
                cycle=0,
                source=2,
                destination=16,
                core_type=CoreType.CPU,
                packet_class=PacketClass.REQUEST,
                cache_level=CacheLevel.CPU_L2_DOWN,
            )
            for _ in range(n)
        ]
        trace = Trace(events, name="flood")
        network = PearlNetwork(config=config, seed=3)
        network.run(trace, engine="fast")
        # Requests plus their closed-loop responses all entered despite
        # the initial overflow, and nothing is left stranded.
        injected = network.stats.counters[CoreType.CPU].packets_injected
        assert injected >= n
        assert network.injection_backlog_size == 0

    def test_backlog_fifo_cycles_monotonic(self):
        """injected_cycle is non-decreasing in packet creation order."""
        config = _config(measure=2_000, warmup=0)
        events = [
            InjectionEvent(
                cycle=0,
                source=4,
                destination=16,
                core_type=CoreType.CPU,
                packet_class=PacketClass.REQUEST,
                cache_level=CacheLevel.CPU_L2_DOWN,
            )
            for _ in range(90)
        ]
        packets = []
        trace = Trace(events, name="flood")
        network = PearlNetwork(config=config, seed=3)
        original_inject = network.routers[4].inject

        def tracking_inject(packet, cycle):
            packets.append(packet)
            original_inject(packet, cycle)

        network.routers[4].inject = tracking_inject
        network.run(trace, engine="fast")
        assert len(packets) == 90
        cycles = [p.injected_cycle for p in packets]
        assert cycles == sorted(cycles)
        ids = [p.packet_id for p in packets]
        assert ids == sorted(ids)
