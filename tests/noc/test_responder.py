"""Tests for repro.noc.responder — shared closed-loop response policy."""

import numpy as np
import pytest

from repro.cache.memory import MemoryController
from repro.noc.network import ResponderConfig
from repro.noc.packet import CacheLevel, CoreType, PacketClass, make_request
from repro.noc.responder import build_response

L3 = 16


def _respond(request, cycle=100, config=None, seed=0, memory=None):
    return build_response(
        request,
        cycle,
        config or ResponderConfig(),
        np.random.default_rng(seed),
        memory or MemoryController(),
        l3_router_id=L3,
    )


class TestL3Responses:
    def test_l3_hit_latency(self):
        request = make_request(0, L3, CoreType.CPU, CacheLevel.CPU_L2_DOWN)
        config = ResponderConfig(cpu_l3_miss_rate=0.0)
        ready, response = _respond(request, cycle=100, config=config)
        assert ready == 100 + config.l3_hit_latency
        assert response.cache_level is CacheLevel.L3
        assert response.source == L3
        assert response.destination == 0
        assert response.size_flits == config.response_flits

    def test_l3_miss_adds_memory_latency(self):
        request = make_request(0, L3, CoreType.CPU, CacheLevel.CPU_L2_DOWN)
        config = ResponderConfig(cpu_l3_miss_rate=1.0)
        memory = MemoryController()
        ready, _ = _respond(request, cycle=100, config=config, memory=memory)
        assert ready > 100 + config.l3_hit_latency
        assert memory.stats.requests == 1

    def test_response_preserves_core_type(self):
        request = make_request(3, L3, CoreType.GPU, CacheLevel.GPU_L2_DOWN)
        _, response = _respond(request)
        assert response.core_type is CoreType.GPU


class TestPeerResponses:
    def test_peer_latency_and_level(self):
        request = make_request(0, 5, CoreType.CPU, CacheLevel.CPU_L2_DOWN)
        config = ResponderConfig()
        ready, response = _respond(request, cycle=50, config=config)
        assert ready == 50 + config.peer_latency
        assert response.cache_level is CacheLevel.CPU_L2_UP
        assert response.source == 5
        assert response.size_flits == config.response_flits


class TestLocalResponses:
    def test_local_l2_response(self):
        request = make_request(4, 4, CoreType.GPU, CacheLevel.GPU_L1)
        config = ResponderConfig()
        ready, response = _respond(request, cycle=10, config=config)
        assert ready == 10 + config.local_l2_latency
        assert response.cache_level is CacheLevel.GPU_L2_UP
        assert response.is_local
        assert response.size_flits == 1  # local responses stay small

    def test_all_responses_are_responses(self):
        for destination in (L3, 5, 0):
            source = 0 if destination != 0 else 2
            request = make_request(
                source, destination, CoreType.CPU,
                CacheLevel.CPU_L2_DOWN if destination != source else CacheLevel.CPU_L1_DATA,
            )
            _, response = _respond(request)
            assert response.packet_class is PacketClass.RESPONSE
            assert response.created_cycle >= 0
