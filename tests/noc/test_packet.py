"""Tests for repro.noc.packet."""

import pytest

from repro.noc.packet import (
    CPU_CACHE_LEVELS,
    CacheLevel,
    CoreType,
    GPU_CACHE_LEVELS,
    Packet,
    PacketClass,
    make_request,
    make_response,
)


class TestCoreType:
    def test_other_is_involution(self):
        assert CoreType.CPU.other is CoreType.GPU
        assert CoreType.GPU.other is CoreType.CPU
        assert CoreType.CPU.other.other is CoreType.CPU


class TestCacheLevel:
    def test_cpu_levels_report_cpu(self):
        for level in CPU_CACHE_LEVELS:
            assert level.core_type is CoreType.CPU

    def test_gpu_levels_report_gpu(self):
        for level in GPU_CACHE_LEVELS:
            assert level.core_type is CoreType.GPU

    def test_l3_is_shared(self):
        assert CacheLevel.L3.core_type is None

    def test_eight_levels_total(self):
        assert len(CacheLevel) == 8


class TestPacket:
    def test_request_constructor(self):
        packet = make_request(0, 16, CoreType.CPU, CacheLevel.CPU_L2_DOWN, cycle=5)
        assert packet.is_request
        assert not packet.is_response
        assert packet.size_flits == 1
        assert packet.created_cycle == 5

    def test_response_constructor_default_five_flits(self):
        packet = make_response(16, 0, CoreType.GPU, CacheLevel.L3)
        assert packet.is_response
        assert packet.size_flits == 5
        assert packet.size_bits == 640

    def test_local_packet_allowed(self):
        packet = make_request(3, 3, CoreType.CPU, CacheLevel.CPU_L1_DATA)
        assert packet.is_local

    def test_remote_packet_not_local(self):
        packet = make_request(3, 4, CoreType.CPU, CacheLevel.CPU_L2_DOWN)
        assert not packet.is_local

    def test_mismatched_core_type_rejected(self):
        with pytest.raises(ValueError):
            make_request(0, 1, CoreType.CPU, CacheLevel.GPU_L1)

    def test_l3_level_accepts_both_core_types(self):
        make_response(16, 0, CoreType.CPU, CacheLevel.L3)
        make_response(16, 0, CoreType.GPU, CacheLevel.L3)

    def test_zero_flits_rejected(self):
        with pytest.raises(ValueError):
            Packet(
                source=0,
                destination=1,
                core_type=CoreType.CPU,
                packet_class=PacketClass.REQUEST,
                cache_level=CacheLevel.CPU_L1_DATA,
                size_flits=0,
            )

    def test_negative_created_cycle_rejected(self):
        with pytest.raises(ValueError):
            make_request(0, 1, CoreType.CPU, CacheLevel.CPU_L1_DATA, cycle=-1)

    def test_packet_ids_unique(self):
        a = make_request(0, 1, CoreType.CPU, CacheLevel.CPU_L1_DATA)
        b = make_request(0, 1, CoreType.CPU, CacheLevel.CPU_L1_DATA)
        assert a.packet_id != b.packet_id

    def test_latency_none_until_received(self):
        packet = make_request(0, 1, CoreType.CPU, CacheLevel.CPU_L1_DATA, cycle=10)
        assert packet.latency is None
        packet.received_cycle = 42
        assert packet.latency == 32


class TestFlits:
    def test_flit_decomposition(self):
        packet = make_response(16, 0, CoreType.CPU, CacheLevel.L3, size_flits=5)
        flits = list(packet.flits())
        assert len(flits) == 5
        assert flits[0].is_head and not flits[0].is_tail
        assert flits[-1].is_tail and not flits[-1].is_head
        assert all(not f.is_head and not f.is_tail for f in flits[1:-1])

    def test_single_flit_is_head_and_tail(self):
        packet = make_request(0, 1, CoreType.CPU, CacheLevel.CPU_L2_DOWN)
        (flit,) = packet.flits()
        assert flit.is_head and flit.is_tail

    def test_flit_indexes_sequential(self):
        packet = make_response(16, 0, CoreType.GPU, CacheLevel.L3)
        assert [f.index for f in packet.flits()] == [0, 1, 2, 3, 4]

    def test_flits_reference_parent(self):
        packet = make_response(16, 0, CoreType.GPU, CacheLevel.L3)
        assert all(f.packet is packet for f in packet.flits())
