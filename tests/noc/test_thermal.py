"""Tests for repro.noc.thermal — ring thermal drift and heater control."""

import pytest

from repro.noc.thermal import (
    HeaterController,
    RingThermalModel,
    ThermalParams,
    ThermalTrimmingModel,
)


class TestThermalParams:
    def test_defaults_valid(self):
        params = ThermalParams()
        assert params.drift_nm_per_k == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            ThermalParams(time_constant_cycles=0)
        with pytest.raises(ValueError):
            ThermalParams(heater_range_k=0)


class TestRingThermalModel:
    def test_starts_at_ambient(self):
        ring = RingThermalModel(ambient_k=350.0)
        assert ring.temperature_k == 350.0

    def test_relaxes_toward_steady_state(self):
        ring = RingThermalModel()
        target = ring.steady_state_k(activity=1.0, heater_fraction=0.0)
        for _ in range(20):
            ring.step(activity=1.0, heater_fraction=0.0, cycles=2_000)
        assert ring.temperature_k == pytest.approx(target, abs=0.1)

    def test_monotone_approach(self):
        ring = RingThermalModel()
        temperatures = [
            ring.step(1.0, 0.5, cycles=500) for _ in range(10)
        ]
        assert temperatures == sorted(temperatures)

    def test_heater_raises_temperature(self):
        cold = RingThermalModel()
        hot = RingThermalModel()
        cold.step(0.0, 0.0, cycles=10_000)
        hot.step(0.0, 1.0, cycles=10_000)
        assert hot.temperature_k > cold.temperature_k

    def test_drift_sign(self):
        ring = RingThermalModel()
        ring.step(1.0, 1.0, cycles=50_000)
        assert ring.drift_nm(locked_temperature_k=350.0) > 0

    def test_alignment_threshold(self):
        """Drift beyond half a channel spacing loses the channel."""
        ring = RingThermalModel()
        locked = ring.temperature_k
        assert ring.is_aligned(locked)
        # 0.8 nm spacing at 0.1 nm/K -> 4 K drift breaks alignment.
        ring.temperature_k = locked + 5.0
        assert not ring.is_aligned(locked)

    def test_input_validation(self):
        ring = RingThermalModel()
        with pytest.raises(ValueError):
            ring.step(1.5, 0.0)
        with pytest.raises(ValueError):
            ring.step(0.0, -0.1)
        with pytest.raises(ValueError):
            ring.step(0.0, 0.0, cycles=0)


class TestHeaterController:
    def test_holds_lock_through_activity_swings(self):
        """The loop keeps the ring aligned as activity comes and goes."""
        controller = HeaterController(RingThermalModel())
        for activity in (0.0, 1.0, 0.0, 1.0, 0.3):
            for _ in range(30):
                controller.step(activity, cycles=500)
            assert controller.is_locked()

    def test_heater_backs_off_under_self_heating(self):
        """Free heat from modulation reduces trimming power."""
        controller = HeaterController(RingThermalModel())
        for _ in range(50):
            controller.step(0.0, cycles=1_000)
        idle_power = controller.heater_power_w()
        for _ in range(50):
            controller.step(1.0, cycles=1_000)
        busy_power = controller.heater_power_w()
        assert busy_power < idle_power

    def test_energy_accumulates(self):
        controller = HeaterController(RingThermalModel())
        controller.step(0.0, cycles=1_000)
        assert controller.energy_j > 0

    def test_invalid_gain(self):
        with pytest.raises(ValueError):
            HeaterController(RingThermalModel(), gain=0)


class TestThermalTrimmingModel:
    def test_banks_powered_mapping(self):
        model = ThermalTrimmingModel()
        assert model.banks_powered(64) == 4
        assert model.banks_powered(48) == 3
        assert model.banks_powered(32) == 2
        assert model.banks_powered(16) == 1
        assert model.banks_powered(8) == 1
        assert model.banks_powered(0) == 0

    def test_trimming_scales_with_state(self):
        model = ThermalTrimmingModel()
        full = model.step(64, activity=0.2, cycles=1_000)
        model2 = ThermalTrimmingModel()
        low = model2.step(16, activity=0.2, cycles=1_000)
        assert full > low > 0

    def test_total_power_order_of_magnitude(self):
        """~128 rings at tens of uW each -> milliwatt-scale trimming."""
        model = ThermalTrimmingModel()
        power = model.step(64, activity=0.0, cycles=50_000)
        assert 1e-4 < power < 1e-2

    def test_all_locked_through_scaling(self):
        model = ThermalTrimmingModel()
        for state in (64, 16, 64, 8, 48):
            for _ in range(20):
                model.step(state, activity=0.5, cycles=500)
        assert model.all_locked()

    def test_energy_integrates(self):
        model = ThermalTrimmingModel()
        model.step(64, 0.5, cycles=1_000)
        assert model.total_energy_j() > 0

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            ThermalTrimmingModel(num_banks=0)
