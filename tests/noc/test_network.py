"""Tests for repro.noc.network — the closed-loop PEARL simulator."""

import pytest

from repro.config import PearlConfig, SimulationConfig
from repro.noc.network import PearlNetwork, ResponderConfig
from repro.noc.packet import CoreType
from repro.noc.router import PowerPolicyKind
from repro.traffic.synthetic import uniform_random_trace
from repro.traffic.trace import Trace


def _config(measure=1_500, warmup=100):
    return PearlConfig(
        simulation=SimulationConfig(warmup_cycles=warmup, measure_cycles=measure)
    )


class TestConstruction:
    def test_seventeen_routers(self):
        network = PearlNetwork(_config())
        assert len(network.routers) == 17
        assert network.routers[16].is_l3
        assert network.routers[16].parallel_links == 8

    def test_cluster_routers_single_link(self):
        network = PearlNetwork(_config())
        assert all(r.parallel_links == 1 for r in network.routers[:16])

    def test_ml_policy_requires_model(self):
        with pytest.raises(ValueError):
            PearlNetwork(_config(), power_policy=PowerPolicyKind.ML)


class TestClosedLoop:
    def test_requests_produce_responses(self, tiny_config, tiny_trace):
        network = PearlNetwork(tiny_config)
        result = network.run(tiny_trace)
        stats = result.stats
        # Responses carry 5 flits; delivered flits must exceed requests.
        delivered = stats.packets_delivered
        assert delivered > 0
        assert stats.flits_delivered > delivered

    def test_both_core_types_served(self, tiny_config, tiny_trace):
        result = PearlNetwork(tiny_config).run(tiny_trace)
        assert result.stats.counters[CoreType.CPU].packets_delivered > 0
        assert result.stats.counters[CoreType.GPU].packets_delivered > 0

    def test_deterministic_same_seed(self, tiny_config, tiny_trace):
        a = PearlNetwork(tiny_config, seed=3).run(tiny_trace)
        trace2 = Trace(list(tiny_trace.events), name=tiny_trace.name)
        b = PearlNetwork(tiny_config, seed=3).run(trace2)
        assert a.throughput() == b.throughput()
        assert a.mean_laser_power_w == pytest.approx(b.mean_laser_power_w)

    def test_latency_positive(self, tiny_config, tiny_trace):
        result = PearlNetwork(tiny_config).run(tiny_trace)
        assert result.stats.mean_latency() > 0

    def test_empty_trace_runs_clean(self, tiny_config):
        result = PearlNetwork(tiny_config).run(Trace([]))
        assert result.stats.packets_delivered == 0
        assert result.mean_laser_power_w > 0  # static lasers still burn


class TestPowerAccounting:
    def test_static_64wl_power(self, tiny_config, tiny_trace):
        """16 cluster lasers + 8 L3 bank lasers at 1.16 W each."""
        result = PearlNetwork(tiny_config).run(tiny_trace)
        assert result.mean_laser_power_w == pytest.approx(24 * 1.16, rel=0.01)

    def test_static_16wl_power(self, tiny_config, tiny_trace):
        result = PearlNetwork(tiny_config, static_state=16).run(tiny_trace)
        assert result.mean_laser_power_w == pytest.approx(24 * 0.29, rel=0.01)

    def test_reactive_saves_power(self, tiny_config, tiny_trace):
        base = PearlNetwork(tiny_config).run(tiny_trace)
        trace2 = Trace(list(tiny_trace.events), name=tiny_trace.name)
        scaled = PearlNetwork(
            tiny_config, power_policy=PowerPolicyKind.REACTIVE
        ).run(trace2)
        assert scaled.mean_laser_power_w < base.mean_laser_power_w

    def test_residency_sums_to_one(self, tiny_config, tiny_trace):
        result = PearlNetwork(
            tiny_config, power_policy=PowerPolicyKind.REACTIVE
        ).run(tiny_trace)
        assert sum(result.state_residency.values()) == pytest.approx(1.0)

    def test_static_residency_all_at_state(self, tiny_config, tiny_trace):
        result = PearlNetwork(tiny_config, static_state=32).run(tiny_trace)
        assert result.state_residency[32] == pytest.approx(1.0)

    def test_energy_components_populated(self, tiny_config, tiny_trace):
        stats = PearlNetwork(tiny_config).run(tiny_trace).stats
        assert stats.laser_energy_j > 0
        assert stats.trimming_energy_j > 0
        assert stats.modulation_energy_j > 0
        assert stats.receiver_energy_j > 0
        assert stats.ml_energy_j == 0.0  # no ML policy

    @pytest.mark.slow
    def test_ml_energy_charged(self, tiny_config, tiny_trace, tiny_trained_model):
        stats = (
            PearlNetwork(
                tiny_config,
                power_policy=PowerPolicyKind.ML,
                ml_model=tiny_trained_model.model,
            )
            .run(tiny_trace)
            .stats
        )
        assert stats.ml_energy_j > 0


@pytest.mark.slow
class TestMlPolicy:
    def test_ml_run_produces_history(
        self, tiny_config, tiny_trace, tiny_trained_model
    ):
        result = PearlNetwork(
            tiny_config,
            power_policy=PowerPolicyKind.ML,
            ml_model=tiny_trained_model.model,
        ).run(tiny_trace)
        assert len(result.ml_predictions) > 0
        assert len(result.ml_labels) > 0

    def test_no_8wl_when_disabled(
        self, tiny_config, tiny_trace, tiny_trained_model
    ):
        result = PearlNetwork(
            tiny_config,
            power_policy=PowerPolicyKind.ML,
            ml_model=tiny_trained_model.model,
            allow_8wl=False,
        ).run(tiny_trace)
        assert result.state_residency[8] == 0.0


class TestCollectionMode:
    def test_hook_receives_samples(self, tiny_config, tiny_trace):
        network = PearlNetwork(tiny_config, power_policy=PowerPolicyKind.RANDOM)
        samples = []
        network.enable_collection(
            lambda rid, feats, label: samples.append((rid, label))
        )
        network.run(tiny_trace)
        assert len(samples) > 17  # several windows per router
        router_ids = {rid for rid, _ in samples}
        assert router_ids == set(range(17))


class TestResponderConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ResponderConfig(cpu_l3_miss_rate=1.5)
        with pytest.raises(ValueError):
            ResponderConfig(l3_hit_latency=-1)

    def test_miss_rate_controls_memory_traffic(self, tiny_config, tiny_trace):
        never = PearlNetwork(
            tiny_config,
            responder=ResponderConfig(cpu_l3_miss_rate=0.0, gpu_l3_miss_rate=0.0),
        )
        never.run(tiny_trace)
        assert never.memory.stats.requests == 0
        always = PearlNetwork(
            tiny_config,
            responder=ResponderConfig(cpu_l3_miss_rate=1.0, gpu_l3_miss_rate=1.0),
        )
        always.run(tiny_trace)
        assert always.memory.stats.requests > 0


class TestAdaptivePolicy:
    def test_adaptive_runs_end_to_end(self, tiny_config, tiny_trace):
        network = PearlNetwork(
            tiny_config, power_policy=PowerPolicyKind.ADAPTIVE
        )
        result = network.run(tiny_trace)
        assert result.stats.packets_delivered > 0
        # The adaptive scaler actually reconfigures the lasers.
        assert sum(1 for f in result.state_residency.values() if f > 0) >= 2

    def test_adaptive_saves_power_vs_static(self, tiny_config, tiny_trace):
        base = PearlNetwork(tiny_config).run(tiny_trace)
        adaptive = PearlNetwork(
            tiny_config, power_policy=PowerPolicyKind.ADAPTIVE
        ).run(tiny_trace)
        assert adaptive.mean_laser_power_w < base.mean_laser_power_w

    def test_adaptive_scales_thresholds(self, tiny_config, tiny_trace):
        from repro.core.adaptive import AdaptiveReactiveScaler

        network = PearlNetwork(
            tiny_config, power_policy=PowerPolicyKind.ADAPTIVE
        )
        network.run(tiny_trace)
        scalers = [
            r.reactive
            for r in network.routers
            if isinstance(r.reactive, AdaptiveReactiveScaler)
        ]
        assert len(scalers) == 17
        assert any(s.scale_history for s in scalers)
