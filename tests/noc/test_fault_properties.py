"""Property-based invariants of the fault-injection subsystem.

Three families:

* **no-op schedules** — a schedule whose faults never activate during
  the run produces statistics bit-identical to running with no
  schedule at all (the subsystem is free when unused);
* **conservation** — under arbitrary fault schedules with a generous
  retry budget, no packet is ever permanently lost: every injected
  packet is delivered, dropped (never, with the big budget) or still
  accounted for somewhere in the network;
* **wavelength remapping** — the re-run DBA split over surviving rings
  never assigns a disabled wavelength, keeps the CPU and GPU shares
  disjoint, and covers every survivor.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    MLConfig,
    PearlConfig,
    PowerScalingConfig,
    ResilienceConfig,
    SimulationConfig,
)
from repro.core.dba import remap_wavelengths
from repro.core.wavelength import BandwidthAllocation
from repro.faults import (
    BitErrorFault,
    FaultSchedule,
    LaserDroopFault,
    WavelengthFault,
)
from repro.noc.network import PearlNetwork
from repro.noc.packet import CacheLevel, CoreType, PacketClass
from repro.noc.router import PowerPolicyKind
from repro.traffic.trace import InjectionEvent, Trace

CYCLES = 400


def _config(retry_limit: int = 4) -> PearlConfig:
    return PearlConfig(
        simulation=SimulationConfig(warmup_cycles=0, measure_cycles=CYCLES),
        power_scaling=PowerScalingConfig(reservation_window=100),
        ml=MLConfig(reservation_window=100),
        resilience=ResilienceConfig(
            retry_limit=retry_limit,
            nack_latency_cycles=2,
            retry_backoff_cycles=4,
        ),
    )


@st.composite
def traces(draw):
    """Small random request traces over the 17-node PEARL network."""
    n = draw(st.integers(min_value=1, max_value=40))
    events = []
    for _ in range(n):
        source = draw(st.integers(min_value=0, max_value=15))
        destination = draw(st.integers(min_value=0, max_value=16))
        core = draw(st.sampled_from([CoreType.CPU, CoreType.GPU]))
        if source == destination:
            level = (
                CacheLevel.CPU_L1_DATA
                if core is CoreType.CPU
                else CacheLevel.GPU_L1
            )
        else:
            level = (
                CacheLevel.CPU_L2_DOWN
                if core is CoreType.CPU
                else CacheLevel.GPU_L2_DOWN
            )
        events.append(
            InjectionEvent(
                cycle=draw(st.integers(min_value=0, max_value=200)),
                source=source,
                destination=destination,
                core_type=core,
                packet_class=PacketClass.REQUEST,
                cache_level=level,
            )
        )
    return Trace(events, name="random")


@st.composite
def fault_schedules(draw, min_start=0, max_rate=0.8):
    """Arbitrary small fault schedules with spans inside [0, 2*CYCLES)."""
    routers = st.one_of(st.none(), st.integers(min_value=0, max_value=16))

    def span():
        start = draw(st.integers(min_value=min_start, max_value=min_start + 300))
        end = draw(
            st.one_of(
                st.none(),
                st.integers(min_value=start + 1, max_value=start + 500),
            )
        )
        return start, end

    wavelength_faults = []
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        start, end = span()
        wavelength_faults.append(
            WavelengthFault(
                wavelengths=draw(st.integers(min_value=1, max_value=56)),
                router=draw(routers),
                start=start,
                end=end,
            )
        )
    droop_faults = []
    for _ in range(draw(st.integers(min_value=0, max_value=1))):
        start, end = span()
        droop_faults.append(
            LaserDroopFault(
                max_state=draw(st.sampled_from([8, 16, 32, 48])),
                router=draw(routers),
                start=start,
                end=end,
            )
        )
    bit_error_faults = []
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        start, end = span()
        bit_error_faults.append(
            BitErrorFault(
                rate=draw(
                    st.floats(
                        min_value=0.0,
                        max_value=max_rate,
                        allow_nan=False,
                        allow_infinity=False,
                    )
                ),
                router=draw(routers),
                start=start,
                end=end,
            )
        )
    return FaultSchedule(
        wavelength_faults=tuple(wavelength_faults),
        droop_faults=tuple(droop_faults),
        bit_error_faults=tuple(bit_error_faults),
        seed=draw(st.integers(min_value=0, max_value=2**31)),
    )


class TestNoOpSchedules:
    @settings(max_examples=10, deadline=None)
    @given(trace=traces(), data=st.data())
    def test_never_active_schedule_is_bit_identical(self, trace, data):
        """Faults scheduled after the run ends must change nothing."""
        schedule = data.draw(
            fault_schedules(min_start=CYCLES)  # every span starts post-run
        )
        baseline = PearlNetwork(
            _config(), power_policy=PowerPolicyKind.REACTIVE, seed=3
        )
        base = baseline.run(trace, engine="fast")
        faulted = PearlNetwork(
            _config(),
            power_policy=PowerPolicyKind.REACTIVE,
            seed=3,
            faults=schedule,
        )
        got = faulted.run(trace, engine="fast")
        assert got.stats.to_dict() == base.stats.to_dict()
        assert got.state_residency == base.state_residency

    def test_empty_schedule_is_bit_identical(self):
        trace = Trace(
            [
                InjectionEvent(
                    cycle=5,
                    source=0,
                    destination=16,
                    core_type=CoreType.CPU,
                    packet_class=PacketClass.REQUEST,
                    cache_level=CacheLevel.CPU_L2_DOWN,
                )
            ],
            name="one",
        )
        base = PearlNetwork(_config(), seed=3).run(trace)
        got = PearlNetwork(_config(), seed=3, faults=FaultSchedule()).run(
            trace
        )
        assert got.stats.to_dict() == base.stats.to_dict()


class TestConservation:
    @settings(max_examples=12, deadline=None)
    @given(trace=traces(), schedule=fault_schedules())
    def test_no_packet_permanently_lost(self, trace, schedule):
        """injected == delivered + dropped + still-in-network, always."""
        network = PearlNetwork(
            _config(retry_limit=4),
            power_policy=PowerPolicyKind.REACTIVE,
            seed=3,
            faults=schedule,
        )
        result = network.run(trace, engine="fast")
        stats = result.stats
        injected = sum(
            c.packets_injected for c in stats.counters.values()
        )
        delivered = sum(
            c.packets_delivered for c in stats.counters.values()
        )
        census = network.pending_packet_census()
        assert injected == delivered + stats.packets_dropped + sum(
            census.values()
        ), census
        assert (
            stats.crc_errors
            == stats.retransmissions + stats.packets_dropped
        )

    @settings(max_examples=8, deadline=None)
    @given(trace=traces(), schedule=fault_schedules(max_rate=0.5))
    def test_large_retry_budget_never_drops(self, trace, schedule):
        """While retry budget remains, no packet is ever dropped."""
        network = PearlNetwork(
            _config(retry_limit=10_000),
            seed=3,
            faults=schedule,
        )
        result = network.run(trace, engine="fast")
        assert result.stats.packets_dropped == 0
        assert (
            result.stats.crc_errors == result.stats.retransmissions
        )


class TestWavelengthRemap:
    @settings(max_examples=200, deadline=None)
    @given(
        cpu_fraction=st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0]),
        surviving=st.sets(
            st.integers(min_value=0, max_value=63), max_size=64
        ),
    )
    def test_remap_only_assigns_survivors(self, cpu_fraction, surviving):
        allocation = BandwidthAllocation(
            cpu_fraction=cpu_fraction, gpu_fraction=1.0 - cpu_fraction
        )
        assignment = remap_wavelengths(allocation, tuple(surviving))
        cpu = set(assignment[CoreType.CPU])
        gpu = set(assignment[CoreType.GPU])
        # Never assigns a disabled (non-surviving) ring:
        assert cpu <= surviving
        assert gpu <= surviving
        # Disjoint shares covering every survivor:
        assert not (cpu & gpu)
        assert cpu | gpu == surviving
        # Both sides keep at least one ring while their fraction is
        # nonzero and there are rings enough to share.
        if len(surviving) >= 2 and 0.0 < cpu_fraction < 1.0:
            assert cpu and gpu

    def test_end_to_end_assignment_avoids_disabled_rings(self):
        schedule = FaultSchedule(
            wavelength_faults=(
                WavelengthFault(indices=tuple(range(0, 24, 2)), start=0),
            )
        )
        trace = Trace(
            [
                InjectionEvent(
                    cycle=c,
                    source=0,
                    destination=16,
                    core_type=core,
                    packet_class=PacketClass.REQUEST,
                    cache_level=level,
                )
                for c in range(0, 100, 2)
                for core, level in (
                    (CoreType.CPU, CacheLevel.CPU_L2_DOWN),
                    (CoreType.GPU, CacheLevel.GPU_L2_DOWN),
                )
            ],
            name="mixed",
        )
        network = PearlNetwork(_config(), seed=3, faults=schedule)
        network.run(trace, engine="fast")
        for router in network.routers:
            disabled = router._fault_injector.disabled_wavelengths
            assignment = router.wavelength_assignment()
            for rings in assignment.values():
                assert not (set(rings) & disabled)
