"""Tests for repro.noc.cmesh — the electrical wormhole-mesh baseline."""

import pytest

from repro.config import CMeshConfig, SimulationConfig
from repro.noc.cmesh import (
    EAST,
    L3_BANK_ROUTERS,
    LOCAL,
    NORTH,
    SOUTH,
    WEST,
    CMeshNetwork,
    CMeshRouter,
    l3_bank_for,
)
from repro.noc.packet import CacheLevel, CoreType, make_request
from repro.traffic.synthetic import uniform_random_trace
from repro.traffic.trace import Trace


def _sim(measure=1_500, warmup=100):
    return SimulationConfig(warmup_cycles=warmup, measure_cycles=measure)


class TestRouting:
    @pytest.fixture
    def router5(self):
        # Router 5 is at (x=1, y=1).
        return CMeshRouter(5, CMeshConfig())

    def test_xy_east_first(self, router5):
        assert router5.route(7) == EAST  # (3,1)
        assert router5.route(6) == EAST

    def test_xy_west(self, router5):
        assert router5.route(4) == WEST

    def test_y_after_x(self, router5):
        assert router5.route(13) == SOUTH  # (1,3): same column
        assert router5.route(1) == NORTH

    def test_x_has_priority_over_y(self, router5):
        assert router5.route(15) == EAST  # (3,3): move X first

    def test_local(self, router5):
        assert router5.route(5) == LOCAL

    def test_neighbors(self, router5):
        assert router5.neighbor(NORTH) == 1
        assert router5.neighbor(SOUTH) == 9
        assert router5.neighbor(EAST) == 6
        assert router5.neighbor(WEST) == 4

    def test_edge_neighbors_none(self):
        corner = CMeshRouter(0, CMeshConfig())
        assert corner.neighbor(NORTH) is None
        assert corner.neighbor(WEST) is None
        assert corner.neighbor(EAST) == 1
        assert corner.neighbor(SOUTH) == 4


class TestL3Mapping:
    def test_banks_are_centre_routers(self):
        assert set(L3_BANK_ROUTERS) == {5, 6, 9, 10}

    def test_bank_deterministic_per_packet(self):
        packet = make_request(0, 16, CoreType.CPU, CacheLevel.CPU_L2_DOWN)
        assert l3_bank_for(packet) == l3_bank_for(packet)
        assert l3_bank_for(packet) in L3_BANK_ROUTERS


class TestSimulation:
    def test_delivers_uniform_traffic(self):
        trace = uniform_random_trace(rate=0.02, duration=1_600, seed=1)
        network = CMeshNetwork(simulation=_sim())
        stats = network.run(trace)
        assert stats.packets_delivered > 0
        assert stats.mean_latency() > 0

    def test_closed_loop_responses(self):
        trace = uniform_random_trace(rate=0.02, duration=1_600, seed=1)
        stats = CMeshNetwork(simulation=_sim()).run(trace)
        # 5-flit responses inflate flits over packets.
        assert stats.flits_delivered > stats.packets_delivered

    def test_deterministic(self):
        trace = uniform_random_trace(rate=0.02, duration=1_600, seed=2)
        a = CMeshNetwork(simulation=_sim(), seed=5).run(trace)
        b = CMeshNetwork(simulation=_sim(), seed=5).run(trace)
        assert a.throughput_flits_per_cycle() == b.throughput_flits_per_cycle()

    def test_narrow_links_reduce_throughput(self):
        """Under saturation, halving link bandwidth costs throughput."""
        trace = uniform_random_trace(rate=0.2, duration=1_600, seed=3)
        wide = CMeshNetwork(simulation=_sim(), bandwidth_divisor=1).run(trace)
        narrow = CMeshNetwork(simulation=_sim(), bandwidth_divisor=4).run(trace)
        assert (
            narrow.throughput_flits_per_cycle()
            < wide.throughput_flits_per_cycle()
        )

    def test_electrical_energy_integrated(self):
        trace = uniform_random_trace(rate=0.02, duration=1_600, seed=1)
        stats = CMeshNetwork(simulation=_sim()).run(trace)
        assert stats.electrical_energy_j > 0
        assert stats.laser_energy_j == 0.0

    def test_local_packets_bypass_mesh(self):
        events = uniform_random_trace(rate=0.02, duration=1_600, seed=1).events
        local = Trace(
            [e.__class__(**{**e.__dict__, "destination": e.source}) for e in events]
        )
        stats = CMeshNetwork(simulation=_sim()).run(local)
        assert stats.local_packets_delivered > 0

    def test_invalid_divisor_rejected(self):
        with pytest.raises(ValueError):
            CMeshNetwork(bandwidth_divisor=0)

    def test_packet_conservation_at_low_load(self):
        """Everything offered before the horizon is eventually delivered."""
        sim = SimulationConfig(warmup_cycles=0, measure_cycles=4_000)
        trace = uniform_random_trace(rate=0.005, duration=1_000, seed=6)
        network = CMeshNetwork(simulation=sim)
        stats = network.run(trace)
        injected = sum(c.packets_injected for c in stats.counters.values())
        assert stats.packets_delivered == injected
