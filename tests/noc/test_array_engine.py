"""Array-engine equivalence: the struct-of-arrays core is bit-identical.

The array engine (``PearlNetwork.run(trace, engine="array")``) keeps
router state in numpy arrays and Python-list shadows and replaces the
per-router scalar calls with one vectorized step; ML inference becomes
a single batched matmul per window.  None of that may change a single
bit of the result.  These tests run the same workloads through all
three engines across every power policy, both bandwidth allocators, a
full fault schedule and the Qm.n quantized inference path, and require
byte-equal statistics, residencies, ML prediction streams and backlog
state.  Hypothesis drives the deeper properties: stepping the array
core from an *arbitrary mid-window scalar state* matches scalar
stepping cycle-for-cycle, and the array <-> object state round-trip is
the identity.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    ArchitectureConfig,
    MLConfig,
    PearlConfig,
    PowerScalingConfig,
    SimulationConfig,
)
from repro.faults import (
    BitErrorFault,
    FaultSchedule,
    LaserDroopFault,
    WavelengthFault,
)
from repro.ml.features import NUM_FEATURES
from repro.ml.ridge import RidgeRegression
from repro.noc.array_core import ArrayCore
from repro.noc.network import PearlNetwork
from repro.noc.packet import CacheLevel, CoreType, Packet, PacketClass
from repro.noc.router import PowerPolicyKind
from repro.traffic.benchmarks import CPU_BENCHMARKS, GPU_BENCHMARKS
from repro.traffic.synthetic import generate_pair_trace, uniform_random_trace
from repro.traffic.trace import InjectionEvent, Trace, TraceCursor

ALL_ENGINES = ("reference", "fast", "array")


def _config(measure=1_500, warmup=100, window=200, stagger=None):
    scaling = (
        PowerScalingConfig(reservation_window=window)
        if stagger is None
        else PowerScalingConfig(
            reservation_window=window, router_stagger_cycles=stagger
        )
    )
    return PearlConfig(
        simulation=SimulationConfig(
            warmup_cycles=warmup, measure_cycles=measure
        ),
        power_scaling=scaling,
        ml=MLConfig(reservation_window=window),
    )


def _fault_schedule():
    return FaultSchedule(
        wavelength_faults=(
            WavelengthFault(wavelengths=24, router=3, start=300, end=900),
        ),
        droop_faults=(LaserDroopFault(max_state=32, router=7, start=500),),
        bit_error_faults=(BitErrorFault(rate=0.02, start=250, end=1000),),
    )


@pytest.fixture(scope="module")
def toy_model():
    """A fitted ridge model (arbitrary weights; determinism is what counts)."""
    rng = np.random.default_rng(0)
    model = RidgeRegression(lam=1.0)
    model.fit(rng.normal(size=(64, NUM_FEATURES)), rng.normal(size=64))
    return model


def _canonical(network, result):
    """Everything the engines must reproduce byte-for-byte."""
    return {
        "stats": result.stats.to_dict(),
        "residency": result.state_residency,
        "mean_laser_power_w": result.mean_laser_power_w,
        "laser_stall_cycles": result.laser_stall_cycles,
        "ml_predictions": result.ml_predictions,
        "ml_labels": result.ml_labels,
        "sequence": network._sequence,
        "backlog": network.injection_backlog_size,
        "laser_energy": [r.laser.energy_j for r in network.routers],
        "cycles_in_state": [r.laser.cycles_in_state for r in network.routers],
        "reservations": [r.reservations_sent for r in network.routers],
        "crc_errors": result.stats.crc_errors,
        "retransmissions": result.stats.retransmissions,
    }


def _run_engines(
    config,
    trace,
    policy,
    model=None,
    dyn=True,
    seed=3,
    faults=None,
    engines=ALL_ENGINES,
):
    out = {}
    for engine in engines:
        network = PearlNetwork(
            config=config,
            power_policy=policy,
            use_dynamic_bandwidth=dyn,
            ml_model=model if policy is PowerPolicyKind.ML else None,
            seed=seed,
            faults=faults,
        )
        out[engine] = _canonical(network, network.run(trace, engine=engine))
    return out


def _assert_all_equal(out):
    engines = list(out)
    first = out[engines[0]]
    for engine in engines[1:]:
        assert out[engine] == first, f"{engine} diverged from {engines[0]}"


def _idle_heavy_trace(config, seed=5):
    return uniform_random_trace(
        CoreType.CPU,
        rate=0.05,
        architecture=config.architecture,
        duration=config.simulation.total_cycles // 4,
        seed=seed,
    )


def _pair_trace(config, seed=11):
    return generate_pair_trace(
        CPU_BENCHMARKS["fluidanimate"],
        GPU_BENCHMARKS["dct"],
        config.architecture,
        config.simulation.total_cycles,
        seed,
    )


class TestArrayEngineEquivalence:
    @pytest.mark.parametrize("policy", list(PowerPolicyKind))
    @pytest.mark.parametrize("dyn", [True, False])
    def test_policy_allocator_matrix(self, policy, dyn, toy_model):
        """Every policy x both allocators, three engines, one trace."""
        config = _config()
        trace = _idle_heavy_trace(config)
        out = _run_engines(config, trace, policy, toy_model, dyn=dyn)
        _assert_all_equal(out)

    @pytest.mark.parametrize(
        "policy",
        [
            PowerPolicyKind.ML,
            PowerPolicyKind.REACTIVE,
            PowerPolicyKind.STATIC,
            PowerPolicyKind.PROTEUS,
            PowerPolicyKind.D3NOC,
        ],
    )
    @pytest.mark.parametrize("dyn", [True, False])
    def test_faulted(self, policy, dyn, toy_model):
        """Wavelength + droop + bit-error faults on all three engines."""
        config = _config()
        out = _run_engines(
            config,
            _pair_trace(config),
            policy,
            toy_model,
            dyn=dyn,
            faults=_fault_schedule(),
        )
        _assert_all_equal(out)
        assert out["array"]["crc_errors"] > 0

    @pytest.mark.parametrize("quantization", ["q4.12", "q2.14"])
    def test_quantized_inference(self, quantization, toy_model):
        """Fixed-point batched inference matches the scalar Qm.n path."""
        config = _config()
        config = config.replace(ml=replace(config.ml, quantization=quantization))
        out = _run_engines(
            config, _pair_trace(config), PowerPolicyKind.ML, toy_model
        )
        _assert_all_equal(out)

    def test_quantized_faulted(self, toy_model):
        """Quantized inference and a live fault schedule together."""
        config = _config()
        config = config.replace(ml=replace(config.ml, quantization="q4.12"))
        out = _run_engines(
            config,
            _pair_trace(config),
            PowerPolicyKind.ML,
            toy_model,
            faults=_fault_schedule(),
        )
        _assert_all_equal(out)

    def test_batched_boundaries_stagger_zero(self, toy_model):
        """Unstaggered windows: all 17 rows close on the same cycle, so
        the array engine's inference is one (17 x 30) @ (30,) matmul —
        which must group identically to the scalar engines' batch."""
        config = _config(stagger=0)
        out = _run_engines(
            config, _pair_trace(config), PowerPolicyKind.ML, toy_model
        )
        _assert_all_equal(out)

    def test_saturated_trace(self):
        """Backlogged injection, full buffers, busy engines every cycle."""
        config = _config(measure=1_000)
        trace = uniform_random_trace(
            CoreType.GPU,
            rate=0.4,
            architecture=config.architecture,
            duration=config.simulation.total_cycles,
            seed=5,
        )
        out = _run_engines(config, trace, PowerPolicyKind.REACTIVE)
        _assert_all_equal(out)

    def test_empty_trace(self):
        """A fully idle run: pure window cadence and laser bookkeeping."""
        config = _config()
        out = _run_engines(
            config, Trace([], name="empty"), PowerPolicyKind.REACTIVE
        )
        _assert_all_equal(out)
        assert out["array"]["stats"]["link_total_cycles"] > 0


class TestCollectiveWorkloads:
    """Phase-structured collective schedules through all three engines.

    The collective compiler emits bursty, barrier-ordered traffic with
    multi-flit packets — a different injection shape from the pair and
    uniform traces above — and the PAM4 rows additionally flip every
    serialization and power constant the engines consume."""

    def _collective(self, signaling="nrz", algorithm="allreduce_ring"):
        from repro.traffic.collectives import generate_collective_trace

        config = _config()
        if signaling != "nrz":
            config = config.replace(
                photonic=replace(config.photonic, signaling=signaling)
            )
        trace = generate_collective_trace(
            algorithm,
            config.architecture,
            duration=config.simulation.total_cycles,
            seed=7,
        )
        return config, trace

    @pytest.mark.parametrize(
        "algorithm",
        [
            "allreduce_ring",
            "halving_doubling",
            "alltoall",
            "parameter_server",
        ],
    )
    @pytest.mark.parametrize("signaling", ["nrz", "pam4"])
    def test_ml_policy_engines_match(self, algorithm, signaling, toy_model):
        config, trace = self._collective(signaling, algorithm)
        out = _run_engines(config, trace, PowerPolicyKind.ML, toy_model)
        _assert_all_equal(out)

    @pytest.mark.parametrize(
        "policy",
        [
            PowerPolicyKind.REACTIVE,
            PowerPolicyKind.PROTEUS,
            PowerPolicyKind.D3NOC,
        ],
    )
    def test_rule_policies_pam4(self, policy, toy_model):
        config, trace = self._collective("pam4", "alltoall")
        out = _run_engines(config, trace, policy, toy_model)
        _assert_all_equal(out)

    def test_faulted_collective(self, toy_model):
        """A fault schedule on top of a PAM4 collective run."""
        config, trace = self._collective("pam4", "halving_doubling")
        out = _run_engines(
            config,
            trace,
            PowerPolicyKind.ML,
            toy_model,
            faults=_fault_schedule(),
        )
        _assert_all_equal(out)
        assert out["array"]["crc_errors"] > 0

    def test_quantized_collective(self, toy_model):
        """q4.12 batched inference driven by collective traffic."""
        config, trace = self._collective("nrz", "parameter_server")
        config = config.replace(
            ml=replace(config.ml, quantization="q4.12")
        )
        out = _run_engines(config, trace, PowerPolicyKind.ML, toy_model)
        _assert_all_equal(out)


class TestNonDefaultClusterCounts:
    """The array core must size every array from the live network, not
    from the paper's 16-cluster default (regression for hard-coded
    router-count literals)."""

    @pytest.mark.parametrize("clusters", [4, 9])
    def test_array_engine_on_other_cluster_counts(self, clusters):
        config = PearlConfig(
            architecture=ArchitectureConfig(num_clusters=clusters),
            simulation=SimulationConfig(warmup_cycles=100, measure_cycles=800),
        )
        trace = uniform_random_trace(
            CoreType.CPU,
            rate=0.1,
            architecture=config.architecture,
            duration=config.simulation.total_cycles // 2,
            seed=7,
        )
        out = {}
        for engine in ("fast", "array"):
            network = PearlNetwork(
                config=config, power_policy=PowerPolicyKind.REACTIVE, seed=7
            )
            assert len(network.routers) == clusters + 1
            out[engine] = _canonical(
                network, network.run(trace, engine=engine)
            )
        assert out["fast"] == out["array"]
        delivered = sum(
            c["packets_delivered"]
            for c in out["array"]["stats"]["counters"].values()
        )
        assert delivered > 0


# -- mid-window state properties ---------------------------------------------


def _packet_key(p: Packet):
    # packet_id is deliberately excluded: the twin networks interleave
    # draws from the global id counter, so ids differ even for
    # identical histories.  Position + every other field pins identity.
    return (
        p.source,
        p.destination,
        p.core_type.value,
        p.packet_class.value,
        p.cache_level.value,
        p.size_flits,
        p.created_cycle,
        p.injected_cycle,
        p.received_cycle,
        p.retries,
    )


def _heap_key(entries):
    out = []
    for entry in sorted(entries, key=lambda t: (t[0], t[1])):
        parts = []
        for item in entry:
            if isinstance(item, Packet):
                parts.append(_packet_key(item))
            elif hasattr(item, "packet"):  # Transmission
                parts.append(
                    (
                        _packet_key(item.packet),
                        item.arrival_cycle,
                        item.source_router,
                    )
                )
            else:
                parts.append(item)
        out.append(tuple(parts))
    return out


def _mid_state(net):
    """The complete observable mid-run state of a network."""
    state = {
        "sequence": net._sequence,
        "rng": net._rng.bit_generator.state,
        "responses": _heap_key(net._responses),
        "in_flight": _heap_key(net._in_flight),
        "retransmits": _heap_key(net._retransmits),
        "inj_backlog": [
            [_packet_key(p) for p in backlog]
            for backlog in net._injection_backlog
        ],
        "retry_backlog": [
            [_packet_key(p) for p in backlog]
            for backlog in net._retransmit_backlog
        ],
        "mem_free_at": list(net.memory._free_at),
        "mem_busy": net.memory.stats.busy_cycles,
        "mem_requests": net.memory.stats.requests,
    }
    stats = net.stats
    state["stats"] = (
        {ct.value: vars(c).copy() for ct, c in stats.counters.items()},
        stats.local_packets_delivered,
        stats.network_flits_delivered,
        stats.link_busy_cycles,
        stats.link_total_cycles,
        list(stats._latencies),
        stats.crc_errors,
        stats.retransmissions,
        stats.packets_dropped,
        stats.fault_clamp_events,
    )
    rows = []
    for router in net.routers:
        fc = router.features
        bank = router.laser
        rows.append(
            {
                "cpu_q": [_packet_key(p) for p in router.buffers.cpu._queue],
                "gpu_q": [_packet_key(p) for p in router.buffers.gpu._queue],
                "cpu_occ": router.buffers.cpu._occupied_slots,
                "gpu_occ": router.buffers.gpu._occupied_slots,
                "ejc_q": [_packet_key(p) for p in router._ejection_cpu._queue],
                "ejg_q": [_packet_key(p) for p in router._ejection_gpu._queue],
                "ejc_occ": router._ejection_cpu._occupied_slots,
                "ejg_occ": router._ejection_gpu._occupied_slots,
                "ej_backlog": [
                    _packet_key(p) for p in router._ejection_backlog
                ],
                "feat_sums": dict(fc._occupancy_sums),
                "feat_samples": fc._occupancy_samples,
                "feat_link": (fc._link_busy_cycles, fc._link_samples),
                "feat_counts": (
                    fc._sent_to_core,
                    fc._incoming_other,
                    fc._incoming_cores,
                    fc._network_injected,
                    fc._requests_sent,
                    fc._responses_sent,
                    fc._requests_received,
                    fc._responses_received,
                    dict(fc._requests_by_level),
                    dict(fc._responses_by_level),
                ),
                "laser": (
                    bank._state,
                    bank._pending_state,
                    bank._stabilize_remaining,
                    dict(bank.cycles_in_state),
                    dict(bank._cycles_at_power),
                    bank.stall_cycles,
                ),
                "engines": (
                    [e.busy_until for e in router._engines[CoreType.CPU]],
                    [e.busy_until for e in router._engines[CoreType.GPU]],
                    router._local_engine.busy_until,
                ),
                "reservations": router.reservations_sent,
                "dba_pin": router.dba.pinned_label,
                "d3noc": (
                    (
                        router.d3noc.demand_ewma,
                        list(router.d3noc.decisions),
                        list(router.d3noc.split_history),
                    )
                    if router.d3noc is not None
                    else None
                ),
                "reactive": (
                    (
                        router.reactive._occupancy_sum,
                        router.reactive._samples,
                    )
                    if router.reactive is not None
                    else None
                ),
                "scaler": (
                    (
                        list(router.ml_scaler.predictions),
                        list(router.ml_scaler.decisions),
                        list(router.ml_scaler.labels),
                        router.ml_scaler._pending_label,
                    )
                    if router.ml_scaler is not None
                    else None
                ),
            }
        )
    state["routers"] = rows
    return state


def _twin_networks(policy, seed, model=None):
    config = _config(measure=1_200, warmup=0, window=200)
    kwargs = dict(
        config=config,
        power_policy=policy,
        use_dynamic_bandwidth=True,
        ml_model=model if policy is PowerPolicyKind.ML else None,
        seed=seed,
    )
    return PearlNetwork(**kwargs), PearlNetwork(**kwargs), config


@st.composite
def traces(draw):
    """Small random request traces over the 17-node PEARL network."""
    n = draw(st.integers(min_value=0, max_value=60))
    events = []
    for _ in range(n):
        source = draw(st.integers(min_value=0, max_value=15))
        destination = draw(st.integers(min_value=0, max_value=16))
        core = draw(st.sampled_from([CoreType.CPU, CoreType.GPU]))
        if source == destination:
            level = (
                CacheLevel.CPU_L1_DATA
                if core is CoreType.CPU
                else CacheLevel.GPU_L1
            )
        else:
            level = (
                CacheLevel.CPU_L2_DOWN
                if core is CoreType.CPU
                else CacheLevel.GPU_L2_DOWN
            )
        events.append(
            InjectionEvent(
                cycle=draw(st.integers(min_value=0, max_value=350)),
                source=source,
                destination=destination,
                core_type=core,
                packet_class=PacketClass.REQUEST,
                cache_level=level,
            )
        )
    return Trace(events, name="random")


class TestMidWindowStateProperties:
    @given(
        trace=traces(),
        policy=st.sampled_from(
            [
                PowerPolicyKind.STATIC,
                PowerPolicyKind.REACTIVE,
                PowerPolicyKind.ADAPTIVE,
                PowerPolicyKind.RANDOM,
                PowerPolicyKind.PROTEUS,
                PowerPolicyKind.D3NOC,
            ]
        ),
        seed=st.integers(min_value=0, max_value=2**16),
        split=st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=10, deadline=None)
    def test_vectorized_step_equals_scalar_step(
        self, trace, policy, seed, split
    ):
        """Array stepping from an arbitrary mid-window scalar state is
        cycle-for-cycle identical to continuing with scalar steps."""
        scalar, vector, config = _twin_networks(policy, seed)
        cur_s, cur_v = TraceCursor(trace), TraceCursor(trace)
        for cycle in range(split):
            scalar.step(cycle, cur_s)
            vector.step(cycle, cur_v)
        core = ArrayCore(vector, start_cycle=split)
        end = split + 300
        for cycle in range(split, end):
            scalar.step(cycle, cur_s)
            core.step(cycle, cur_v)
        core.sync_to_objects(end)
        assert _mid_state(scalar) == _mid_state(vector)

    @given(
        trace=traces(),
        seed=st.integers(min_value=0, max_value=2**16),
        split=st.integers(min_value=1, max_value=450),
    )
    @settings(max_examples=8, deadline=None)
    def test_array_object_round_trip_identity(self, trace, seed, split):
        """ArrayCore(net) followed by an immediate sync leaves the
        object state exactly as it was, and scalar stepping afterwards
        stays bit-identical to a network the array core never touched."""
        scalar, vector, config = _twin_networks(
            PowerPolicyKind.REACTIVE, seed
        )
        cur_s, cur_v = TraceCursor(trace), TraceCursor(trace)
        for cycle in range(split):
            scalar.step(cycle, cur_s)
            vector.step(cycle, cur_v)
        ArrayCore(vector, start_cycle=split).sync_to_objects(split)
        assert _mid_state(scalar) == _mid_state(vector)
        for cycle in range(split, split + 120):
            scalar.step(cycle, cur_s)
            vector.step(cycle, cur_v)
        assert _mid_state(scalar) == _mid_state(vector)

    def test_mid_window_ml_policy(self, toy_model):
        """Directed (non-hypothesis) mid-stream check on the ML policy,
        including a window close while the array core is driving."""
        trace_config = _config(measure=1_200, warmup=0)
        trace = _pair_trace(trace_config, seed=4)
        scalar, vector, config = _twin_networks(
            PowerPolicyKind.ML, seed=4, model=toy_model
        )
        cur_s, cur_v = TraceCursor(trace), TraceCursor(trace)
        split = 137  # mid-window for every staggered router
        for cycle in range(split):
            scalar.step(cycle, cur_s)
            vector.step(cycle, cur_v)
        core = ArrayCore(vector, start_cycle=split)
        end = split + 463  # crosses several window boundaries
        for cycle in range(split, end):
            scalar.step(cycle, cur_s)
            core.step(cycle, cur_v)
        core.sync_to_objects(end)
        assert _mid_state(scalar) == _mid_state(vector)
