"""Tests for the pearl-sim CLI."""

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Keep CLI-triggered result-cache writes out of the repo tree."""
    monkeypatch.setenv(
        "PEARL_RESULT_CACHE_DIR", str(tmp_path / "result_cache")
    )


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig5", "fig9", "table1", "ml_quality", "headline"):
            assert name in out


class TestExperiment:
    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "fig99"]) == 2

    def test_table_experiment(self, capsys):
        assert main(["experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "CPU cores" in out


class TestEngineFlags:
    def test_jobs_flag_parallel_run(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("PEARL_RESULT_CACHE_DIR", str(tmp_path / "rc"))
        assert main(["experiment", "fig4", "--jobs", "2"]) == 0
        serial_out = capsys.readouterr().out
        # The parallel run populated the cache; a repeat hits it and
        # prints the identical table.
        assert main(["experiment", "fig4", "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial_out
        assert (tmp_path / "rc").exists()

    def test_no_cache_skips_disk(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("PEARL_RESULT_CACHE_DIR", str(tmp_path / "rc"))
        assert main(["experiment", "fig4", "--no-cache"]) == 0
        assert not (tmp_path / "rc").exists()

    def test_invalid_jobs_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["experiment", "fig4", "--jobs", "0"])

    def test_engine_restored_after_run(self):
        from repro.experiments.parallel import current_engine

        before = current_engine()
        assert main(["experiment", "fig4", "--jobs", "2"]) == 0
        assert current_engine() is before


class TestSimulate:
    def test_static_simulation(self, capsys):
        code = main(
            [
                "simulate",
                "--cpu",
                "fluidanimate",
                "--gpu",
                "dct",
                "--cycles",
                "1000",
                "--warmup",
                "100",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput_flits_per_cycle" in out
        assert "residency" in out

    def test_reactive_simulation(self, capsys):
        code = main(
            [
                "simulate",
                "--policy",
                "reactive",
                "--cycles",
                "1000",
                "--warmup",
                "100",
                "--window",
                "200",
            ]
        )
        assert code == 0

    def test_fcfs_flag(self, capsys):
        code = main(
            ["simulate", "--fcfs", "--cycles", "800", "--warmup", "100"]
        )
        assert code == 0

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--cpu", "unknown"])


class TestChart:
    def test_chart_flag_renders(self, capsys):
        # fig4 is trace-only, so this stays fast.
        assert main(["experiment", "fig4", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "Fig.4" in out
        assert "│" in out

    def test_chart_flag_without_renderer(self, capsys):
        assert main(["experiment", "table1", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "no chart renderer" in out
