"""Tests for the pearl-sim CLI."""

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Keep CLI-triggered result-cache writes out of the repo tree."""
    monkeypatch.setenv(
        "PEARL_RESULT_CACHE_DIR", str(tmp_path / "result_cache")
    )


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig5", "fig9", "table1", "ml_quality", "headline"):
            assert name in out


class TestExperiment:
    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "fig99"]) == 2

    def test_table_experiment(self, capsys):
        assert main(["experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "CPU cores" in out


class TestEngineFlags:
    def test_jobs_flag_parallel_run(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("PEARL_RESULT_CACHE_DIR", str(tmp_path / "rc"))
        assert main(["experiment", "fig4", "--jobs", "2"]) == 0
        serial_out = capsys.readouterr().out
        # The parallel run populated the cache; a repeat hits it and
        # prints the identical table.
        assert main(["experiment", "fig4", "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial_out
        assert (tmp_path / "rc").exists()

    def test_no_cache_skips_disk(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("PEARL_RESULT_CACHE_DIR", str(tmp_path / "rc"))
        assert main(["experiment", "fig4", "--no-cache"]) == 0
        assert not (tmp_path / "rc").exists()

    def test_invalid_jobs_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["experiment", "fig4", "--jobs", "0"])

    def test_engine_restored_after_run(self):
        from repro.experiments.parallel import current_engine

        before = current_engine()
        assert main(["experiment", "fig4", "--jobs", "2"]) == 0
        assert current_engine() is before


class TestSimulate:
    def test_static_simulation(self, capsys):
        code = main(
            [
                "simulate",
                "--cpu",
                "fluidanimate",
                "--gpu",
                "dct",
                "--cycles",
                "1000",
                "--warmup",
                "100",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput_flits_per_cycle" in out
        assert "residency" in out

    def test_reactive_simulation(self, capsys):
        code = main(
            [
                "simulate",
                "--policy",
                "reactive",
                "--cycles",
                "1000",
                "--warmup",
                "100",
                "--window",
                "200",
            ]
        )
        assert code == 0

    def test_fcfs_flag(self, capsys):
        code = main(
            ["simulate", "--fcfs", "--cycles", "800", "--warmup", "100"]
        )
        assert code == 0

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--cpu", "unknown"])

    def test_collective_workload(self, capsys):
        code = main(
            [
                "simulate",
                "--workload",
                "collective:alltoall",
                "--policy",
                "reactive",
                "--cycles",
                "1000",
                "--warmup",
                "100",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "collective:alltoall" in out

    def test_pam4_signaling(self, capsys):
        code = main(
            [
                "simulate",
                "--signaling",
                "pam4",
                "--cycles",
                "800",
                "--warmup",
                "100",
            ]
        )
        assert code == 0
        assert "signaling=pam4" in capsys.readouterr().out

    def test_rejects_unknown_collective_at_parse_time(self, capsys):
        """Argument parsing (not the run) rejects a bad algorithm and
        names the valid ones."""
        with pytest.raises(SystemExit):
            main(["simulate", "--workload", "collective:ring_of_fire"])
        err = capsys.readouterr().err
        assert "allreduce_ring" in err

    def test_rejects_malformed_workload(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--workload", "bogus"])

    def test_rejects_unknown_signaling(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--signaling", "qam16"])


class TestChart:
    def test_chart_flag_renders(self, capsys):
        # fig4 is trace-only, so this stays fast.
        assert main(["experiment", "fig4", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "Fig.4" in out
        assert "│" in out

    def test_chart_flag_without_renderer(self, capsys):
        assert main(["experiment", "table1", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "no chart renderer" in out


class TestVersion:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestUnknownSubcommand:
    def test_unknown_subcommand_exits_nonzero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 2

    def test_no_subcommand_exits_nonzero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2

    def test_unknown_obs_subcommand_exits_nonzero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["obs", "frobnicate"])
        assert excinfo.value.code == 2


class TestObsReport:
    def test_report_renders_summary(self, capsys):
        assert main(["obs", "report", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "# provenance" in out
        assert "# metrics" in out
        assert "engine/jobs_executed" in out

    def test_report_json_is_machine_readable(self, capsys):
        import json

        assert main(["obs", "report", "fig4", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["provenance"]["experiment"] == "fig4"
        names = {row["name"] for row in doc["metrics"]}
        assert "engine/jobs_executed" in names

    def test_report_unknown_experiment(self, capsys):
        assert main(["obs", "report", "fig99"]) == 2

    def test_report_writes_trace_artifacts(self, capsys, tmp_path):
        stem = tmp_path / "run"
        assert main(["obs", "report", "fig4", "--trace", str(stem)]) == 0
        assert (tmp_path / "run.jsonl").exists()
        assert (tmp_path / "run.trace.json").exists()

    def test_telemetry_disabled_after_report(self):
        from repro.obs import OBS

        assert main(["obs", "report", "fig4"]) == 0
        assert not OBS.enabled

    def test_invalid_sample_every_rejected(self):
        with pytest.raises(SystemExit):
            main(["obs", "report", "fig4", "--sample-every", "0"])


class TestTraceFlag:
    def test_experiment_trace_exports_artifacts(self, capsys, tmp_path):
        stem = tmp_path / "exp"
        assert main(
            ["experiment", "fig4", "--no-cache", "--trace", str(stem)]
        ) == 0
        import json

        lines = [
            json.loads(line)
            for line in (tmp_path / "exp.jsonl").read_text().splitlines()
        ]
        assert lines[0]["type"] == "provenance"
        assert lines[0]["provenance"]["command"] == "experiment"

    def test_simulate_trace_exports_artifacts(self, capsys, tmp_path):
        stem = tmp_path / "sim"
        code = main(
            [
                "simulate",
                "--cycles",
                "1000",
                "--warmup",
                "100",
                "--trace",
                str(stem),
            ]
        )
        assert code == 0
        import json

        doc = json.loads((tmp_path / "sim.trace.json").read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert "sim/measure" in names

    def test_trace_flag_leaves_telemetry_disabled(self, tmp_path):
        from repro.obs import OBS

        assert main(
            [
                "experiment",
                "fig4",
                "--no-cache",
                "--trace",
                str(tmp_path / "t"),
            ]
        ) == 0
        assert not OBS.enabled
