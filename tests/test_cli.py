"""Tests for the pearl-sim CLI."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig5", "fig9", "table1", "ml_quality", "headline"):
            assert name in out


class TestExperiment:
    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "fig99"]) == 2

    def test_table_experiment(self, capsys):
        assert main(["experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "CPU cores" in out


class TestSimulate:
    def test_static_simulation(self, capsys):
        code = main(
            [
                "simulate",
                "--cpu",
                "fluidanimate",
                "--gpu",
                "dct",
                "--cycles",
                "1000",
                "--warmup",
                "100",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput_flits_per_cycle" in out
        assert "residency" in out

    def test_reactive_simulation(self, capsys):
        code = main(
            [
                "simulate",
                "--policy",
                "reactive",
                "--cycles",
                "1000",
                "--warmup",
                "100",
                "--window",
                "200",
            ]
        )
        assert code == 0

    def test_fcfs_flag(self, capsys):
        code = main(
            ["simulate", "--fcfs", "--cycles", "800", "--warmup", "100"]
        )
        assert code == 0

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--cpu", "unknown"])


class TestChart:
    def test_chart_flag_renders(self, capsys):
        # fig4 is trace-only, so this stays fast.
        assert main(["experiment", "fig4", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "Fig.4" in out
        assert "│" in out

    def test_chart_flag_without_renderer(self, capsys):
        assert main(["experiment", "table1", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "no chart renderer" in out
