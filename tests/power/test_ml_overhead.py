"""Tests for repro.power.ml_overhead — the inference hardware model."""

import pytest

from repro.power.ml_overhead import MLHardwareModel


class TestMLHardwareModel:
    def test_operation_counts_match_paper(self):
        model = MLHardwareModel()
        assert model.num_multiplies == 30
        assert model.num_additions == 29

    def test_inference_energy_near_paper_value(self):
        """The paper estimates 44.6 pJ per prediction."""
        energy = MLHardwareModel().inference_energy_pj()
        assert energy == pytest.approx(44.6, rel=0.2)

    def test_mean_power_near_paper_value(self):
        """The paper estimates 178.4 uW at RW500 / 2 GHz."""
        power = MLHardwareModel().mean_power_uw(500, 2.0)
        assert power == pytest.approx(178.4, rel=0.2)

    def test_longer_window_lower_power(self):
        model = MLHardwareModel()
        assert model.mean_power_uw(2000) < model.mean_power_uw(500)

    def test_scaled_feature_count(self):
        smaller = MLHardwareModel().scaled(15)
        assert smaller.num_multiplies == 15
        assert smaller.inference_energy_pj() < MLHardwareModel().inference_energy_pj()

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            MLHardwareModel().scaled(0)

    def test_zero_window_rejected(self):
        with pytest.raises(ValueError):
            MLHardwareModel().mean_power_uw(0)
