"""Tests for repro.power.energy — energy-per-bit bookkeeping."""

import pytest

from repro.noc.packet import CacheLevel, CoreType, make_request
from repro.noc.stats import NetworkStats
from repro.power.energy import EnergyBreakdown, energy_per_bit_pj


class TestEnergyBreakdown:
    def test_total_sums_all_components(self):
        breakdown = EnergyBreakdown(
            laser_j=1.0,
            trimming_j=2.0,
            modulation_j=3.0,
            receiver_j=4.0,
            ml_j=5.0,
            electrical_j=6.0,
        )
        assert breakdown.total_j == pytest.approx(21.0)

    def test_per_bit(self):
        breakdown = EnergyBreakdown(laser_j=1e-9)
        assert breakdown.per_bit_pj(1000) == pytest.approx(1.0)

    def test_per_bit_zero_bits_rejected(self):
        with pytest.raises(ValueError):
            EnergyBreakdown().per_bit_pj(0)

    def test_as_dict_round_trip(self):
        breakdown = EnergyBreakdown(laser_j=1.5, ml_j=0.5)
        d = breakdown.as_dict()
        assert d["laser_j"] == 1.5
        assert d["total_j"] == pytest.approx(2.0)

    def test_from_stats(self):
        stats = NetworkStats()
        stats.laser_energy_j = 7.0
        stats.electrical_energy_j = 3.0
        breakdown = EnergyBreakdown.from_stats(stats)
        assert breakdown.laser_j == 7.0
        assert breakdown.electrical_j == 3.0


class TestEnergyPerBit:
    def test_counts_network_bits_only(self):
        stats = NetworkStats()
        packet = make_request(0, 16, CoreType.CPU, CacheLevel.CPU_L2_DOWN)
        stats.on_injected(packet)
        stats.on_delivered(packet, 10)
        stats.laser_energy_j = 128e-12
        assert energy_per_bit_pj(stats) == pytest.approx(1.0)

    def test_zero_traffic_is_zero(self):
        assert energy_per_bit_pj(NetworkStats()) == 0.0
