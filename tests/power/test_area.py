"""Tests for repro.power.area — Table II accounting."""

import pytest

from repro.config import AreaConfig, ArchitectureConfig
from repro.power.area import area_table, chip_area_mm2, control_overhead_fraction


class TestAreaTable:
    def test_table2_entries_present(self):
        table = area_table()
        assert table["Router"] == 0.342
        assert table["Machine Learning"] == 0.018
        assert table["Dynamic Allocation"] == 0.576
        assert len(table) == 10

    def test_chip_area_positive(self):
        assert chip_area_mm2() > 400.0  # 16 clusters at ~27.7 mm^2 each

    def test_control_overhead_under_one_percent(self):
        """The paper's point: DBA + ML control is almost free."""
        assert control_overhead_fraction() < 0.01

    def test_overhead_scales_inverse_with_clusters(self):
        small = control_overhead_fraction(
            architecture=ArchitectureConfig(num_clusters=4)
        )
        large = control_overhead_fraction(
            architecture=ArchitectureConfig(num_clusters=16)
        )
        assert large < small
