"""Tests for repro.power.electrical — the derived CMESH energy model."""

import pytest

from repro.config import ElectricalPowerConfig
from repro.power.electrical import (
    ElectricalParams,
    derive_config,
    link_energy_pj_per_flit,
    router_energy_pj_per_flit,
    static_power_w_per_router,
)


class TestDerivations:
    def test_link_energy_formula(self):
        """alpha=0.5, 0.2 pF/mm x 5.2 mm, 1 V, 128 bits."""
        expected = 0.5 * 0.05 * 5.2 * 1.0 * 128
        assert link_energy_pj_per_flit() == pytest.approx(expected)

    def test_link_energy_scales_with_voltage_squared(self):
        low = link_energy_pj_per_flit(ElectricalParams(supply_v=0.8))
        high = link_energy_pj_per_flit(ElectricalParams(supply_v=1.0))
        assert high / low == pytest.approx(1.0 / 0.8**2)

    def test_router_energy_reasonable(self):
        energy = router_energy_pj_per_flit()
        assert 10.0 < energy < 50.0

    def test_static_power_reasonable(self):
        power = static_power_w_per_router()
        assert 0.1 < power < 2.0

    def test_defaults_match_shipped_config(self):
        """The derived constants land within ~40% of the shipped ones
        (ElectricalPowerConfig defaults were rounded)."""
        derived = derive_config()
        shipped = ElectricalPowerConfig()
        assert derived.router_energy_pj_per_flit == pytest.approx(
            shipped.router_energy_pj_per_flit, rel=0.4
        )
        assert derived.link_energy_pj_per_flit_per_hop == pytest.approx(
            shipped.link_energy_pj_per_flit_per_hop, rel=0.4
        )
        assert derived.static_power_w_per_router == pytest.approx(
            shipped.static_power_w_per_router, rel=0.6
        )

    def test_derived_config_usable_by_cmesh(self):
        from repro.config import SimulationConfig
        from repro.noc.cmesh import CMeshNetwork
        from repro.traffic.synthetic import uniform_random_trace

        network = CMeshNetwork(
            power=derive_config(),
            simulation=SimulationConfig(warmup_cycles=0, measure_cycles=600),
        )
        trace = uniform_random_trace(rate=0.02, duration=600, seed=1)
        stats = network.run(trace)
        assert stats.electrical_energy_j > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ElectricalParams(supply_v=0)
        with pytest.raises(ValueError):
            ElectricalParams(switching_activity=0)
        with pytest.raises(ValueError):
            ElectricalParams(flit_bits=0)
