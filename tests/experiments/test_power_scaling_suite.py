"""Unit tests for the power-scaling-suite plumbing (no simulation)."""

import pytest

from repro.experiments.power_scaling_suite import (
    ConfigOutcome,
    SUITE_LABELS,
    parse_suite_label,
)
from repro.noc.router import PowerPolicyKind


class TestParseSuiteLabel:
    def test_baseline(self):
        window, policy, allow = parse_suite_label("64WL")
        assert policy is PowerPolicyKind.STATIC
        assert allow is None

    def test_dyn_labels(self):
        assert parse_suite_label("Dyn RW500") == (
            500,
            PowerPolicyKind.REACTIVE,
            None,
        )
        assert parse_suite_label("Dyn RW2000")[0] == 2000

    def test_ml_labels(self):
        window, policy, allow = parse_suite_label("ML RW500")
        assert (window, policy, allow) == (500, PowerPolicyKind.ML, True)
        window, policy, allow = parse_suite_label("ML RW500 no8WL")
        assert allow is False

    def test_every_suite_label_parses(self):
        for label in SUITE_LABELS:
            parse_suite_label(label)

    def test_unknown_label_rejected(self):
        with pytest.raises(ValueError):
            parse_suite_label("Mystery RW1")


class TestConfigOutcome:
    def test_loss_and_savings(self):
        base = ConfigOutcome(label="base", throughput=10.0, laser_power_w=20.0)
        scaled = ConfigOutcome(
            label="scaled", throughput=9.0, laser_power_w=10.0
        )
        assert scaled.throughput_loss_vs(base) == pytest.approx(0.1)
        assert scaled.power_savings_vs(base) == pytest.approx(0.5)

    def test_degenerate_baseline(self):
        base = ConfigOutcome(label="base")
        scaled = ConfigOutcome(label="s", throughput=1.0, laser_power_w=1.0)
        assert scaled.throughput_loss_vs(base) == 0.0
        assert scaled.power_savings_vs(base) == 0.0
