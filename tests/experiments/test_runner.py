"""Tests for repro.experiments.runner."""

import pytest

from repro.experiments.runner import (
    ExperimentResult,
    cached,
    clear_cache,
    describe_pair,
    experiment_pairs,
    simulation_config,
)
from repro.traffic.benchmarks import test_pairs as paper_test_pairs


class TestExperimentResult:
    def test_add_and_column(self):
        result = ExperimentResult(name="demo")
        result.add_row(config="a", value=1.0)
        result.add_row(config="b", value=3.0)
        assert result.column("value") == [1.0, 3.0]
        assert result.mean("value") == 2.0

    def test_mean_missing_column_raises(self):
        with pytest.raises(KeyError):
            ExperimentResult(name="demo").mean("nope")

    def test_format_table_contains_rows(self):
        result = ExperimentResult(name="demo")
        result.add_row(config="a", value=1.2345)
        text = result.format_table()
        assert "demo" in text
        assert "config" in text
        assert "1.234" in text

    def test_format_empty(self):
        assert "no rows" in ExperimentResult(name="x").format_table()

    def test_notes_appended(self):
        result = ExperimentResult(name="demo", notes=["hello"])
        result.add_row(a=1)
        assert "hello" in result.format_table()


class TestPartialColumns:
    """Regression: partial columns must be an explicit choice.

    ``column()`` used to drop rows lacking the key silently while
    ``mean()`` raised — aggregations over heterogeneous results (e.g.
    the concatenated ablations table) could quietly average a subset.
    """

    def _partial(self) -> ExperimentResult:
        result = ExperimentResult(name="partial")
        result.add_row(config="a", value=1.0)
        result.add_row(config="b")  # no "value"
        result.add_row(config="c", value=3.0)
        return result

    def test_partial_column_raises_by_default(self):
        with pytest.raises(KeyError, match=r"missing from rows \[1\]"):
            self._partial().column("value")

    def test_partial_mean_raises_by_default(self):
        with pytest.raises(KeyError):
            self._partial().mean("value")

    def test_drop_mode_skips_absent_rows(self):
        assert self._partial().column("value", missing="drop") == [1.0, 3.0]
        assert self._partial().mean("value", missing="drop") == 2.0

    def test_fill_mode_substitutes(self):
        assert self._partial().column("value", missing="fill") == [
            1.0,
            None,
            3.0,
        ]
        assert self._partial().column("value", missing="fill", fill=0.0) == [
            1.0,
            0.0,
            3.0,
        ]

    def test_fill_mean_ignores_none(self):
        # None fills are excluded from the mean rather than crashing.
        assert self._partial().mean("value", missing="fill") == 2.0

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            self._partial().column("value", missing="bogus")

    def test_complete_column_unaffected(self):
        result = ExperimentResult(name="full")
        result.add_row(value=2.0)
        result.add_row(value=4.0)
        assert result.column("value") == [2.0, 4.0]
        assert result.mean("value") == 3.0

    def test_wholly_absent_column_raises_in_drop_mode_mean(self):
        result = ExperimentResult(name="none")
        result.add_row(other=1.0)
        with pytest.raises(KeyError):
            result.mean("value", missing="drop")


class TestPairsAndConfig:
    def test_quick_pairs_are_diagonal(self):
        quick = experiment_pairs(quick=True)
        assert len(quick) == 4
        full = paper_test_pairs()
        assert quick == [full[0], full[5], full[10], full[15]]

    def test_full_pairs_are_all_sixteen(self):
        assert len(experiment_pairs(quick=False)) == 16

    def test_quick_cycles_shorter(self):
        assert (
            simulation_config(quick=True).measure_cycles
            < simulation_config(quick=False).measure_cycles
        )

    def test_describe_pair(self):
        pair = experiment_pairs()[0]
        assert describe_pair(pair) == "FA+DCT"


class TestCache:
    def test_cached_computes_once(self):
        clear_cache()
        calls = []

        def compute():
            calls.append(1)
            return 42

        assert cached("key", compute) == 42
        assert cached("key", compute) == 42
        assert len(calls) == 1
        clear_cache()

    def test_distinct_keys_isolated(self):
        clear_cache()
        assert cached("a", lambda: 1) == 1
        assert cached("b", lambda: 2) == 2
        clear_cache()
