"""Tests for repro.experiments.runner."""

import pytest

from repro.experiments.runner import (
    ExperimentResult,
    cached,
    clear_cache,
    describe_pair,
    experiment_pairs,
    simulation_config,
)
from repro.traffic.benchmarks import test_pairs as paper_test_pairs


class TestExperimentResult:
    def test_add_and_column(self):
        result = ExperimentResult(name="demo")
        result.add_row(config="a", value=1.0)
        result.add_row(config="b", value=3.0)
        assert result.column("value") == [1.0, 3.0]
        assert result.mean("value") == 2.0

    def test_mean_missing_column_raises(self):
        with pytest.raises(KeyError):
            ExperimentResult(name="demo").mean("nope")

    def test_format_table_contains_rows(self):
        result = ExperimentResult(name="demo")
        result.add_row(config="a", value=1.2345)
        text = result.format_table()
        assert "demo" in text
        assert "config" in text
        assert "1.234" in text

    def test_format_empty(self):
        assert "no rows" in ExperimentResult(name="x").format_table()

    def test_notes_appended(self):
        result = ExperimentResult(name="demo", notes=["hello"])
        result.add_row(a=1)
        assert "hello" in result.format_table()


class TestPairsAndConfig:
    def test_quick_pairs_are_diagonal(self):
        quick = experiment_pairs(quick=True)
        assert len(quick) == 4
        full = paper_test_pairs()
        assert quick == [full[0], full[5], full[10], full[15]]

    def test_full_pairs_are_all_sixteen(self):
        assert len(experiment_pairs(quick=False)) == 16

    def test_quick_cycles_shorter(self):
        assert (
            simulation_config(quick=True).measure_cycles
            < simulation_config(quick=False).measure_cycles
        )

    def test_describe_pair(self):
        pair = experiment_pairs()[0]
        assert describe_pair(pair) == "FA+DCT"


class TestCache:
    def test_cached_computes_once(self):
        clear_cache()
        calls = []

        def compute():
            calls.append(1)
            return 42

        assert cached("key", compute) == 42
        assert cached("key", compute) == 42
        assert len(calls) == 1
        clear_cache()

    def test_distinct_keys_isolated(self):
        clear_cache()
        assert cached("a", lambda: 1) == 1
        assert cached("b", lambda: 2) == 2
        clear_cache()
