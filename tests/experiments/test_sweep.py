"""Tests for repro.experiments.sweep — the generic grid-sweep utility."""

import pytest

from repro.config import PearlConfig
from repro.experiments.sweep import apply_override, grid, sweep


class TestApplyOverride:
    def test_nested_field(self):
        config = apply_override(
            PearlConfig(), "power_scaling.reservation_window", 999
        )
        assert config.power_scaling.reservation_window == 999
        # Other sections untouched.
        assert config.architecture.num_clusters == 16

    def test_photonic_field(self):
        config = apply_override(PearlConfig(), "photonic.laser_turn_on_ns", 16.0)
        assert config.photonic.laser_turn_on_ns == 16.0

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            apply_override(PearlConfig(), "photonic.bogus", 1)

    def test_too_deep_path_rejected(self):
        with pytest.raises(ValueError):
            apply_override(PearlConfig(), "a.b.c", 1)

    def test_validation_still_applies(self):
        with pytest.raises(ValueError):
            apply_override(PearlConfig(), "dba.bandwidth_step", 0.3)


class TestGrid:
    def test_cartesian_product(self):
        points = list(grid({"a": [1, 2], "b": [10, 20, 30]}))
        assert len(points) == 6
        assert {"a": 2, "b": 30} in points

    def test_empty_axes(self):
        assert list(grid({})) == [{}]

    def test_single_axis(self):
        points = list(grid({"x": [1, 2, 3]}))
        assert points == [{"x": 1}, {"x": 2}, {"x": 3}]


class TestSweep:
    def test_metric_sees_overridden_config(self):
        seen = []

        def metric(config):
            seen.append(config.power_scaling.reservation_window)
            return {"value": float(config.power_scaling.reservation_window)}

        result = sweep(
            {"power_scaling.reservation_window": [100, 200]}, metric
        )
        assert seen == [100, 200]
        assert result.column("value") == [100.0, 200.0]

    def test_rows_carry_override_columns(self):
        result = sweep(
            {
                "photonic.laser_turn_on_ns": [2.0, 4.0],
                "power_scaling.use_8wl": [True, False],
            },
            lambda config: {"ok": 1.0},
        )
        assert len(result.rows) == 4
        assert "photonic.laser_turn_on_ns" in result.rows[0]

    def test_real_simulation_metric(self):
        """End-to-end: a tiny sweep over the reservation window."""
        from repro.config import SimulationConfig
        from repro.noc.network import PearlNetwork
        from repro.noc.router import PowerPolicyKind
        from repro.traffic.synthetic import uniform_random_trace

        base = PearlConfig(
            simulation=SimulationConfig(warmup_cycles=0, measure_cycles=600)
        )
        trace = uniform_random_trace(rate=0.05, duration=600, seed=1)

        def metric(config):
            network = PearlNetwork(
                config, power_policy=PowerPolicyKind.REACTIVE
            )
            run = network.run(trace)
            return {"laser_w": run.mean_laser_power_w}

        result = sweep(
            {"power_scaling.reservation_window": [100, 300]},
            metric,
            base=base,
        )
        assert all(row["laser_w"] > 0 for row in result.rows)
