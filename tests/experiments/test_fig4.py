"""Tests for the Fig. 4 experiment (packet breakdown)."""

import pytest

from repro.experiments import fig4_breakdown


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return fig4_breakdown.run(quick=True)

    def test_one_row_per_pair(self, result):
        assert len(result.rows) == 4  # quick mode diagonal

    def test_percentages_sum_to_100(self, result):
        for row in result.rows:
            assert row["cpu_percent"] + row["gpu_percent"] == pytest.approx(
                100.0
            )

    def test_both_types_present(self, result):
        for row in result.rows:
            assert row["cpu_percent"] > 0
            assert row["gpu_percent"] > 0

    def test_pair_names(self, result):
        names = [row["pair"] for row in result.rows]
        assert "FA+DCT" in names
