"""Tests for repro.experiments.tables — Tables I/II/V regeneration."""

import pytest

from repro.experiments.tables import run, table1, table2, table5


class TestTable1:
    def test_core_counts(self):
        rows = {r["component"]: r["value"] for r in table1().rows}
        assert rows["CPU cores"] == 32
        assert rows["GPU compute units"] == 64
        assert rows["Network frequency (GHz)"] == 2.0
        assert rows["L3 (MB)"] == 8


class TestTable2:
    def test_contains_ml_area(self):
        rows = {r["component"]: r["value"] for r in table2().rows}
        assert rows["Machine Learning"] == 0.018
        assert rows["Total chip (mm^2)"] > 0
        assert rows["Control overhead fraction"] < 0.01


class TestTable5:
    def test_paper_laser_powers_present(self):
        rows = {r["component"]: r["value"] for r in table5().rows}
        assert rows["Laser power @64 WL (W, paper)"] == pytest.approx(1.16)
        assert rows["Laser power @8 WL (W, paper)"] == pytest.approx(0.145)

    def test_budget_model_same_order_of_magnitude(self):
        rows = {r["component"]: r["value"] for r in table5().rows}
        paper = rows["Laser power @64 WL (W, paper)"]
        model = rows["Laser power @64 WL (W, budget model)"]
        assert 0.05 < model / paper < 20

    def test_receiver_sensitivity(self):
        rows = {r["component"]: r["value"] for r in table5().rows}
        assert rows["Receiver sensitivity (dBm)"] == -15.0


class TestCombined:
    def test_run_concatenates_all(self):
        combined = run()
        tables = {row["table"] for row in combined.rows}
        assert len(tables) == 3
