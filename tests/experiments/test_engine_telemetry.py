"""Telemetry through the parallel engine: merging, caching, determinism.

The contract under test:

* metric values are identical for ``jobs=1`` and ``jobs=4`` (merging is
  order-independent, so worker scheduling cannot change the numbers);
* worker trace events merge without ``(stream, seq)`` collisions;
* simulation *results* are byte-identical with telemetry on or off;
* cache hits/misses/writes are counted, and cached entries carry their
  job's telemetry so warm re-runs report the same simulation metrics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.config import (
    PearlConfig,
    PowerScalingConfig,
    SimulationConfig,
)
from repro.experiments.cache import ResultCache
from repro.experiments.parallel import (
    ExperimentEngine,
    execute_job,
    pair_spec,
    pearl_job,
)
from repro.experiments.runner import experiment_pairs
from repro.noc.router import PowerPolicyKind
from repro.obs import OBS


@pytest.fixture(autouse=True)
def _telemetry_off():
    obs.disable()
    yield
    obs.disable()


@pytest.fixture
def specs():
    config = PearlConfig(
        simulation=SimulationConfig(warmup_cycles=100, measure_cycles=1_000),
        power_scaling=PowerScalingConfig(reservation_window=200),
    )
    pairs = experiment_pairs(quick=True)[:2]
    return [
        pearl_job(
            config,
            pair_spec(pair, seed),
            seed=seed,
            power_policy=PowerPolicyKind.REACTIVE,
        )
        for pair in pairs
        for seed in (1, 2)
    ]


def _run(specs, jobs, cache=None):
    with obs.session():
        results = ExperimentEngine(jobs=jobs, cache=cache).run(specs)
        return (
            OBS.registry.snapshot(include_volatile=False),
            OBS.tracer.events(include_wall=False),
            [r.mean_laser_power_w for r in results],
        )


class TestParallelMergeIdentity:
    def test_jobs1_and_jobs4_identical_metrics(self, specs):
        snap_serial, _, results_serial = _run(specs, jobs=1)
        snap_parallel, _, results_parallel = _run(specs, jobs=4)
        assert results_serial == results_parallel
        assert snap_serial == snap_parallel

    def test_simulation_metrics_present(self, specs):
        snap, _, _ = _run(specs, jobs=1)
        for name in (
            "noc/windows_closed",
            "laser/transitions",
            "sim/packets_delivered",
        ):
            assert snap[name]["value"] > 0, name
        assert any(name.startswith("dba/split/") for name in snap)
        assert any(name.startswith("laser/state_cycles/") for name in snap)

    def test_worker_traces_merge_without_collisions(self, specs):
        _, events, _ = _run(specs, jobs=4)
        keys = [(e.stream, e.seq) for e in events]
        assert len(keys) == len(set(keys))
        assert {e.stream for e in events} == {
            f"job{i}" for i in range(len(specs))
        }

    def test_window_series_identical_serial_and_parallel(self, specs):
        """Worker series snapshots merge in submission order, so an
        instrumented ``--jobs N`` sweep reproduces the serial series
        column-for-column (including the per-job stream tags)."""

        def _series(jobs):
            with obs.session(series_every=1):
                results = ExperimentEngine(jobs=jobs).run(specs)
                return OBS.series.arrays(), [
                    r.mean_laser_power_w for r in results
                ]

        serial, results_serial = _series(jobs=1)
        parallel, results_parallel = _series(jobs=2)
        assert results_serial == results_parallel
        assert len(serial["cycle"]) > 0
        assert set(serial) == set(parallel)
        for column in serial:
            a, b = serial[column], parallel[column]
            if a.dtype.kind == "f":
                assert np.array_equal(a, b, equal_nan=True), column
            else:
                assert np.array_equal(a, b), column
        assert set(serial["stream"].tolist()) == {
            f"job{i}" for i in range(len(specs))
        }

    def test_series_cadence_propagates_to_workers(self, specs):
        def _rows(series_every):
            with obs.session(series_every=series_every):
                ExperimentEngine(jobs=2).run(specs)
                return len(OBS.series)

        full = _rows(1)
        halved = _rows(2)
        assert full > 0
        assert 0 < halved < full


class TestResultDeterminism:
    def test_results_identical_with_telemetry_on_or_off(self, specs):
        plain = ExperimentEngine(jobs=1).run(specs)
        with obs.session():
            instrumented = ExperimentEngine(jobs=1).run(specs)
        for a, b in zip(plain, instrumented):
            assert a.stats.to_dict() == b.stats.to_dict()
            assert a.state_residency == b.state_residency
            assert a.mean_laser_power_w == b.mean_laser_power_w

    def test_execute_job_attaches_telemetry_only_when_enabled(self, specs):
        assert execute_job(specs[0]).telemetry is None
        with obs.session():
            telemetry = execute_job(specs[0]).telemetry
        assert telemetry is not None
        assert telemetry["metrics"]["sim/runs"]["value"] == 1


class TestCacheTelemetry:
    def _counters(self, snap):
        return {
            name: data["value"]
            for name, data in snap.items()
            if name.startswith("engine/cache_")
        }

    def test_cold_then_warm_counters(self, tmp_path, specs):
        cold, _, _ = _run(specs, jobs=2, cache=ResultCache(tmp_path))
        assert self._counters(cold) == {
            "engine/cache_misses": len(specs),
            "engine/cache_writes": len(specs),
        }
        warm, _, _ = _run(specs, jobs=2, cache=ResultCache(tmp_path))
        assert self._counters(warm) == {"engine/cache_hits": len(specs)}

    def test_warm_run_reports_same_simulation_metrics(self, tmp_path, specs):
        live, _, _ = _run(specs, jobs=1)
        _run(specs, jobs=1, cache=ResultCache(tmp_path))
        warm, _, _ = _run(specs, jobs=1, cache=ResultCache(tmp_path))
        sim_metrics = {
            name: data
            for name, data in live.items()
            if not name.startswith("engine/")
        }
        for name, data in sim_metrics.items():
            assert warm[name] == data, name

    def test_corrupt_entry_counts_error_and_eviction(self, tmp_path, specs):
        cache = ResultCache(tmp_path)
        _run(specs[:1], jobs=1, cache=cache)
        for path in tmp_path.glob("*.json"):
            path.write_text("{ not json")
        snap, _, _ = _run(specs[:1], jobs=1, cache=ResultCache(tmp_path))
        counters = self._counters(snap)
        assert counters["engine/cache_errors"] == 1
        # One eviction per torn *entry* (the meta+blob pair heals as a
        # unit, however many files the backend keeps per key).
        assert counters["engine/cache_evictions"] == 1
        assert counters["engine/cache_misses"] == 1
        assert counters["engine/cache_writes"] == 1
