"""Determinism guarantees of the parallel experiment engine.

The engine promises that the same job specs produce bit-for-bit
identical results (a) across repeated serial runs and (b) between a
serial run and a process-pool fan-out, because every RNG is seeded from
the spec alone and ML models travel by file path through a lossless
``.npz`` round trip.
"""

from __future__ import annotations

import pytest

from repro.experiments.parallel import (
    ExperimentEngine,
    execute_job,
    pair_spec,
    pearl_job,
)
from repro.experiments.runner import experiment_pairs
from repro.noc.router import PowerPolicyKind


def _result_fingerprint(result):
    """Everything a job returns, as comparable plain data."""
    return (
        result.kind,
        result.stats.to_dict() if result.stats is not None else None,
        dict(result.state_residency),
        result.mean_laser_power_w,
        result.laser_stall_cycles,
        list(result.ml_predictions),
        list(result.ml_labels),
        dict(result.extras),
    )


@pytest.fixture(scope="module")
def ml_model_file(tmp_path_factory):
    """A tiny fitted ridge model persisted the way real sweeps ship it."""
    from repro.config import (
        MLConfig,
        PearlConfig,
        PowerScalingConfig,
        SimulationConfig,
    )
    from repro.ml.pipeline import PowerModelTrainer
    from repro.traffic.benchmarks import CPU_BENCHMARKS, GPU_BENCHMARKS

    config = PearlConfig(
        simulation=SimulationConfig(warmup_cycles=100, measure_cycles=1_500),
        power_scaling=PowerScalingConfig(reservation_window=200),
        ml=MLConfig(reservation_window=200),
    )
    trainer = PowerModelTrainer(
        config=config,
        train_pairs=[
            (CPU_BENCHMARKS["blackscholes"], GPU_BENCHMARKS["binary_search"])
        ],
        val_pairs=[(CPU_BENCHMARKS["raytrace"], GPU_BENCHMARKS["prefix_sum"])],
        seed=11,
    )
    model = trainer.train().model
    path = tmp_path_factory.mktemp("models") / "tiny_model.npz"
    model.save(path)
    return config, path


@pytest.fixture(scope="module")
def determinism_specs(ml_model_file):
    """Two pairs under PEARL-Dyn and two under ML RW500-style scaling."""
    config, model_path = ml_model_file
    pairs = experiment_pairs(quick=True)[:2]
    specs = []
    for i, pair in enumerate(pairs):
        specs.append(pearl_job(config, pair_spec(pair, 1 + i), seed=1 + i))
        specs.append(
            pearl_job(
                config,
                pair_spec(pair, 1 + i),
                seed=1 + i,
                power_policy=PowerPolicyKind.ML,
                ml_model_path=model_path,
            )
        )
    return specs


class TestSerialDeterminism:
    def test_two_serial_runs_identical(self, determinism_specs):
        first = [execute_job(spec) for spec in determinism_specs]
        second = [execute_job(spec) for spec in determinism_specs]
        for a, b in zip(first, second):
            assert _result_fingerprint(a) == _result_fingerprint(b)

    def test_results_are_nontrivial(self, determinism_specs):
        results = [execute_job(spec) for spec in determinism_specs]
        assert all(r.stats.packets_delivered > 0 for r in results)
        ml_results = results[1::2]
        assert all(r.ml_predictions for r in ml_results)


class TestParallelMatchesSerial:
    def test_jobs4_identical_to_jobs1(self, determinism_specs):
        serial = ExperimentEngine(jobs=1).run(determinism_specs)
        parallel = ExperimentEngine(jobs=4).run(determinism_specs)
        assert len(serial) == len(parallel) == len(determinism_specs)
        for a, b in zip(serial, parallel):
            assert _result_fingerprint(a) == _result_fingerprint(b)

    def test_submission_order_preserved(self, determinism_specs):
        results = ExperimentEngine(jobs=4).run(determinism_specs)
        # Even-indexed specs are static PEARL-Dyn (no predictions),
        # odd-indexed ones are ML (with predictions) — ordering holds.
        for index, result in enumerate(results):
            if index % 2:
                assert result.ml_predictions
            else:
                assert not result.ml_predictions


class TestFaultedJobDeterminism:
    """Fault counters (CRC, retransmissions, drops, clamps) must merge
    identically whether jobs run serially or in a process pool."""

    @pytest.fixture(scope="class")
    def faulted_specs(self, ml_model_file):
        from repro.faults import (
            BitErrorFault,
            FaultSchedule,
            WavelengthFault,
        )

        config, _ = ml_model_file
        total = config.simulation.total_cycles
        schedule = FaultSchedule(
            wavelength_faults=(
                WavelengthFault(wavelengths=24, start=total // 3),
            ),
            bit_error_faults=(
                BitErrorFault(rate=0.001, start=total // 4),
            ),
            seed=5,
        )
        pairs = experiment_pairs(quick=True)[:2]
        return [
            pearl_job(config, pair_spec(pair, 1 + i), seed=1 + i, faults=schedule)
            for i, pair in enumerate(pairs)
        ]

    def test_faults_change_the_cache_key(self, ml_model_file, faulted_specs):
        config, _ = ml_model_file
        pair = experiment_pairs(quick=True)[0]
        clean = pearl_job(config, pair_spec(pair, 1), seed=1)
        assert clean.payload() != faulted_specs[0].payload()
        assert "faults" not in clean.payload()
        assert "faults" in faulted_specs[0].payload()

    def test_faulted_jobs2_identical_to_jobs1(self, faulted_specs):
        serial = ExperimentEngine(jobs=1).run(faulted_specs)
        parallel = ExperimentEngine(jobs=2).run(faulted_specs)
        for a, b in zip(serial, parallel):
            assert _result_fingerprint(a) == _result_fingerprint(b)
        # The schedule was actually live in the workers:
        assert any(r.stats.crc_errors > 0 for r in serial)
        assert any(r.stats.fault_clamp_events > 0 for r in serial)


class TestEngineValidation:
    def test_zero_jobs_rejected(self):
        with pytest.raises(ValueError):
            ExperimentEngine(jobs=0)
