"""The ``pearl-sim serve`` endpoint: coalescing, caching, backpressure.

Each test runs a real :class:`SweepServer` on an OS-assigned port with
its event loop on a background thread, and talks to it over real
sockets through :class:`ServeClient` — the same path CI's service smoke
uses.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
import time

import pytest

from repro.config import PearlConfig, PowerScalingConfig, SimulationConfig
from repro.experiments.cache import ResultCache
from repro.experiments.parallel import (
    execute_job,
    pair_spec,
    pearl_job,
    trace_job,
)
from repro.experiments.runner import experiment_pairs
from repro.experiments.service.client import ServeClient, ServeError
from repro.experiments.service.server import SweepServer
from repro.experiments.service.spec_codec import spec_to_doc


@pytest.fixture
def tiny_sim_config() -> PearlConfig:
    return PearlConfig(
        simulation=SimulationConfig(warmup_cycles=100, measure_cycles=1_000),
        power_scaling=PowerScalingConfig(reservation_window=200),
    )


class _LiveServer:
    """A served SweepServer plus the thread its event loop runs on."""

    def __init__(self, server: SweepServer) -> None:
        self.server = server
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)

    def __enter__(self) -> "_LiveServer":
        self.thread.start()
        asyncio.run_coroutine_threadsafe(
            self.server.start(), self.loop
        ).result(timeout=60)
        return self

    def __exit__(self, *exc_info) -> None:
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop
        ).result(timeout=60)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=30)
        self.loop.close()

    @property
    def client(self) -> ServeClient:
        return ServeClient(self.server.host, self.server.port)


@pytest.fixture
def live(tmp_path):
    cache = ResultCache(directory=tmp_path / "cache")
    with _LiveServer(SweepServer(cache=cache, port=0, jobs=1)) as live:
        yield live


def _fingerprint(result):
    return (
        result.kind,
        result.stats.to_dict() if result.stats is not None else None,
        dict(result.state_residency),
        result.mean_laser_power_w,
        result.laser_stall_cycles,
        list(result.ml_predictions),
        list(result.ml_labels),
        dict(result.extras),
    )


class TestEndpoints:
    def test_healthz_and_stats(self, live):
        assert live.client.healthz()
        stats = live.client.stats()
        assert stats["submissions"] == 0
        assert stats["inflight"] == 0
        assert stats["store"]["entries"] == 0

    def test_bad_spec_is_400(self, live):
        with pytest.raises(ServeError) as err:
            live.client.submit({"format": 1, "spec": {"kind": "nonsense"}})
        assert err.value.status == 400

    def test_unknown_route_is_404(self, live):
        conn = http.client.HTTPConnection(
            live.server.host, live.server.port, timeout=30
        )
        try:
            conn.request("GET", "/nope")
            assert conn.getresponse().status == 404
        finally:
            conn.close()

    def test_unparseable_body_is_400(self, live):
        conn = http.client.HTTPConnection(
            live.server.host, live.server.port, timeout=30
        )
        try:
            conn.request("POST", "/simulate", body=b"{not json")
            assert conn.getresponse().status == 400
        finally:
            conn.close()


class TestCoalescing:
    def test_burst_of_identical_specs_executes_once(
        self, live, tiny_sim_config
    ):
        pair = experiment_pairs(quick=True)[0]
        doc = spec_to_doc(trace_job(tiny_sim_config, pair_spec(pair, 5)))
        n = 10
        streams = live.client.burst(doc, count=n)

        stats = live.client.stats()
        assert stats["submissions"] == n
        assert stats["executions"] == 1
        # Everyone else either joined the in-flight execution or read
        # the entry it committed — nobody recomputed.
        assert stats["coalesced"] + stats["cache_hits"] == n - 1

        # Every waiter streamed the complete, identical result.
        finals = [events[-1] for events in streams]
        assert all(event["event"] == "result" for event in finals)
        docs = {json.dumps(e["result"], sort_keys=True) for e in finals}
        assert len(docs) == 1

    def test_served_result_is_bit_identical_to_direct_run(
        self, live, tiny_sim_config
    ):
        pair = experiment_pairs(quick=True)[0]
        spec = pearl_job(tiny_sim_config, pair_spec(pair, 3), seed=3)
        served = live.client.submit_result(spec_to_doc(spec))
        direct = execute_job(spec)
        assert _fingerprint(served) == _fingerprint(direct)

    def test_resubmit_after_completion_hits_cache(
        self, live, tiny_sim_config
    ):
        pair = experiment_pairs(quick=True)[0]
        doc = spec_to_doc(trace_job(tiny_sim_config, pair_spec(pair, 7)))
        first = live.client.submit(doc)
        second = live.client.submit(doc)
        assert first[-1]["cached"] is False
        assert second[-1]["cached"] is True
        stats = live.client.stats()
        assert stats["executions"] == 1
        assert stats["cache_hits"] == 1
        assert first[-1]["result"] == second[-1]["result"]


class TestBackpressure:
    def test_distinct_key_beyond_max_pending_is_503(
        self, tmp_path, tiny_sim_config
    ):
        cache = ResultCache(directory=tmp_path / "cache")
        server = SweepServer(cache=cache, port=0, jobs=1, max_pending=1)
        pair = experiment_pairs(quick=True)[0]
        slow = PearlConfig(
            simulation=SimulationConfig(
                warmup_cycles=100, measure_cycles=8_000
            ),
            power_scaling=PowerScalingConfig(reservation_window=200),
        )
        slow_doc = spec_to_doc(pearl_job(slow, pair_spec(pair, 1), seed=1))
        fast_doc = spec_to_doc(
            trace_job(tiny_sim_config, pair_spec(pair, 2), seed=2)
        )
        with _LiveServer(server) as live:
            slow_events: list = []
            submitter = threading.Thread(
                target=lambda: slow_events.append(
                    live.client.submit(slow_doc)
                ),
                daemon=True,
            )
            submitter.start()
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if live.client.stats()["inflight"] >= 1:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("slow submission never became in-flight")

            # A *different* key while the slot is taken: refused.
            with pytest.raises(ServeError) as err:
                live.client.submit(fast_doc)
            assert err.value.status == 503

            # The same key coalesces instead — always admitted.
            joined = live.client.submit(slow_doc)
            assert joined[0]["coalesced"] is True
            assert joined[-1]["event"] == "result"

            submitter.join(timeout=120)
            assert slow_events and slow_events[0][-1]["event"] == "result"
            stats = live.client.stats()
            assert stats["rejected"] == 1
            assert stats["executions"] == 1
