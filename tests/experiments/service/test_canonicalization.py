"""Spec canonicalization: one job, one key, everywhere.

The whole service rests on ``job_key`` being a *content* hash: the same
job must hash identically regardless of dict insertion order, which
process computed it, or whether the spec travelled over the wire.  And
the three execution paths — serial, sharded sweep, served over HTTP —
must return bit-identical results for the same specs.
"""

from __future__ import annotations

import asyncio
import json
import os
import subprocess
import sys
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.config import PearlConfig, PowerScalingConfig, SimulationConfig
from repro.experiments.cache import (
    CODE_VERSION,
    ResultCache,
    canonical_json,
    job_key,
)
from repro.experiments.parallel import (
    cmesh_job,
    collective_spec,
    execute_job,
    pair_spec,
    pearl_job,
    thermal_job,
    trace_job,
    uniform_spec,
)
from repro.experiments.runner import experiment_pairs
from repro.experiments.service.client import ServeClient
from repro.experiments.service.server import SweepServer
from repro.experiments.service.spec_codec import spec_from_doc, spec_to_doc
from repro.experiments.service.sweeper import SweepRunner
from repro.faults import FaultSchedule, WavelengthFault
from repro.noc.router import PowerPolicyKind

# JSON-able payloads: nested dicts/lists of JSON scalars.  NaN/inf are
# excluded because canonical_json (allow_nan=False) rejects them loudly.
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=16),
)
_payloads = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=24,
).filter(lambda value: isinstance(value, dict))


def _reorder(value, rng):
    """The same payload with every dict's insertion order shuffled."""
    if isinstance(value, dict):
        keys = list(value)
        rng.shuffle(keys)
        return {key: _reorder(value[key], rng) for key in keys}
    if isinstance(value, list):
        return [_reorder(item, rng) for item in value]
    return value


@pytest.fixture
def tiny_sim_config() -> PearlConfig:
    return PearlConfig(
        simulation=SimulationConfig(warmup_cycles=100, measure_cycles=1_000),
        power_scaling=PowerScalingConfig(reservation_window=200),
    )


class TestJobKeyProperties:
    @settings(max_examples=60, deadline=None)
    @given(payload=_payloads, rng=st.randoms(use_true_random=False))
    def test_key_ignores_field_ordering(self, payload, rng):
        assert job_key(_reorder(payload, rng)) == job_key(payload)

    @settings(max_examples=60, deadline=None)
    @given(payload=_payloads)
    def test_key_survives_json_roundtrip(self, payload):
        """Wire transport (dump/parse) cannot move a job to a new key."""
        rehydrated = json.loads(json.dumps(payload))
        assert job_key(rehydrated) == job_key(payload)

    @settings(max_examples=30, deadline=None)
    @given(payload=_payloads)
    def test_salt_partitions_the_keyspace(self, payload):
        assert job_key(payload, salt="a") != job_key(payload, salt="b")

    def test_canonical_json_is_compact_and_sorted(self):
        assert canonical_json({"b": 1, "a": [1.5, None]}) == (
            '{"a":[1.5,null],"b":1}'
        )

    def test_canonical_json_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})


class TestCrossProcessStability:
    def test_key_is_stable_across_a_process_boundary(self, tiny_sim_config):
        """A fresh interpreter hashes the same payload to the same key."""
        pair = experiment_pairs(quick=True)[0]
        spec = pearl_job(tiny_sim_config, pair_spec(pair, 3), seed=3)
        payload = spec.payload()
        here = job_key(payload)

        src_root = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        program = (
            "import sys, json; "
            "from repro.experiments.cache import job_key; "
            "print(job_key(json.load(sys.stdin)))"
        )
        there = subprocess.run(
            [sys.executable, "-c", program],
            input=json.dumps(payload),
            env=env,
            capture_output=True,
            text=True,
            check=True,
            timeout=120,
        ).stdout.strip()
        assert there == here
        assert job_key(payload, salt=CODE_VERSION) == here


class TestSpecCodecPreservesKeys:
    def _variants(self, config):
        pair = experiment_pairs(quick=True)[0]
        faults = FaultSchedule(
            wavelength_faults=[WavelengthFault(wavelengths=2, start=50)]
        )
        return [
            pearl_job(config, pair_spec(pair, 3), seed=3),
            pearl_job(
                config,
                uniform_spec(0.4, 5),
                seed=5,
                power_policy=PowerPolicyKind.REACTIVE,
                use_dynamic_bandwidth=False,
                allow_8wl=True,
            ),
            pearl_job(config, pair_spec(pair, 3), seed=3, faults=faults),
            cmesh_job(config, pair_spec(pair, 2), seed=2),
            trace_job(config, uniform_spec(0.2, 9), seed=9),
            pearl_job(
                config,
                collective_spec("allreduce_ring", 7),
                seed=7,
                power_policy=PowerPolicyKind.REACTIVE,
            ),
            thermal_job(
                config,
                wavelength_state=16,
                activity=0.5,
                settle_cycles=100,
                settle_steps=2,
            ),
        ]

    def test_wire_roundtrip_lands_on_the_same_cache_entry(
        self, tiny_sim_config, tmp_path
    ):
        cache = ResultCache(directory=tmp_path, salt=CODE_VERSION)
        for spec in self._variants(tiny_sim_config):
            doc = json.loads(json.dumps(spec_to_doc(spec)))
            decoded = spec_from_doc(doc)
            assert cache.key_for(decoded) == cache.key_for(spec), spec.kind

    def test_reordered_documents_decode_to_the_same_key(
        self, tiny_sim_config, tmp_path
    ):
        import random

        cache = ResultCache(directory=tmp_path, salt=CODE_VERSION)
        spec = self._variants(tiny_sim_config)[0]
        doc = spec_to_doc(spec)
        shuffled = _reorder(doc, random.Random(7))
        assert cache.key_for(spec_from_doc(shuffled)) == cache.key_for(spec)

    def test_unknown_collective_algorithm_rejected_at_decode(
        self, tiny_sim_config
    ):
        """A bad algorithm never reaches a worker: the strict codec
        (via TraceSpec validation) rejects it at decode time."""
        spec = pearl_job(
            tiny_sim_config, collective_spec("allreduce_ring", 7), seed=7
        )
        doc = spec_to_doc(spec)
        doc["trace"]["algorithm"] = "ring_of_fire"
        with pytest.raises(ValueError, match="ring_of_fire"):
            spec_from_doc(doc)

    def test_pair_trace_payload_has_no_algorithm_key(self, tiny_sim_config):
        """Pair/uniform payloads must not grow an ``algorithm`` key —
        that would shift every existing cache entry's content hash."""
        pair = experiment_pairs(quick=True)[0]
        spec = pearl_job(tiny_sim_config, pair_spec(pair, 3), seed=3)
        assert "algorithm" not in spec.trace.payload()


def _result_fingerprint(result):
    return (
        result.kind,
        result.stats.to_dict() if result.stats is not None else None,
        dict(result.state_residency),
        result.mean_laser_power_w,
        result.laser_stall_cycles,
        list(result.ml_predictions),
        list(result.ml_labels),
        dict(result.extras),
    )


class TestThreeWayIdentity:
    def test_serial_sharded_and_served_agree(self, tiny_sim_config, tmp_path):
        """The acceptance property: serial == sharded == served."""
        pair = experiment_pairs(quick=True)[0]
        specs = [
            trace_job(tiny_sim_config, pair_spec(pair, seed), seed=seed)
            for seed in (1, 2, 3)
        ]
        serial = [_result_fingerprint(execute_job(spec)) for spec in specs]

        sweep_cache = ResultCache(directory=tmp_path / "sweep_cache")
        sharded, _ = SweepRunner(sweep_cache, jobs=1, shard_size=2).run(
            specs, tmp_path / "manifest"
        )
        assert [_result_fingerprint(r) for r in sharded] == serial

        serve_cache = ResultCache(directory=tmp_path / "serve_cache")
        server = SweepServer(cache=serve_cache, port=0, jobs=1)
        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        try:
            asyncio.run_coroutine_threadsafe(server.start(), loop).result(
                timeout=60
            )
            client = ServeClient(server.host, server.port)
            served = [
                _result_fingerprint(
                    client.submit_result(spec_to_doc(spec))
                )
                for spec in specs
            ]
        finally:
            asyncio.run_coroutine_threadsafe(server.stop(), loop).result(
                timeout=60
            )
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=30)
            loop.close()
        assert served == serial
