"""Cache store backends: round trips, atomicity scaffolding, management.

Both backends promise the same byte-level contract (see
``service/stores.py``); the whole suite here runs against each via the
``store`` fixture param.
"""

from __future__ import annotations

import pickle

import pytest

from repro.experiments.service.stores import (
    LocalDirStore,
    SqliteStore,
    open_store,
)


@pytest.fixture(params=["dir", "sqlite"])
def store(request, tmp_path):
    if request.param == "dir":
        return LocalDirStore(tmp_path / "cache")
    return SqliteStore(tmp_path / "cache.db")


class TestContract:
    def test_get_missing_is_none(self, store):
        assert store.get("0" * 64) is None

    def test_put_get_roundtrip(self, store):
        store.put("k1", b'{"a": 1}', b"\x00\x01\x02")
        assert store.get("k1") == (b'{"a": 1}', b"\x00\x01\x02")

    def test_overwrite_is_last_writer_wins(self, store):
        store.put("k1", b"old-meta", b"old-blob")
        store.put("k1", b"new-meta", b"new-blob")
        assert store.get("k1") == (b"new-meta", b"new-blob")

    def test_delete_then_miss(self, store):
        store.put("k1", b"m", b"b")
        store.delete("k1")
        assert store.get("k1") is None
        store.delete("k1")  # idempotent

    def test_keys_enumerates_committed_entries(self, store):
        for name in ("b-key", "a-key", "c-key"):
            store.put(name, b"m", b"b")
        assert list(store.keys()) == ["a-key", "b-key", "c-key"]

    def test_entry_info_reports_size(self, store):
        store.put("k1", b"meta!", b"0123456789")
        info = store.entry_info("k1")
        assert info is not None
        size, mtime = info
        assert size == 15
        assert mtime > 0
        assert store.entry_info("absent") is None

    def test_stats_totals(self, store):
        store.put("k1", b"aa", b"bbbb")
        store.put("k2", b"cc", b"dddd")
        stats = store.stats()
        assert stats.entries == 2
        assert stats.total_bytes == 12
        assert stats.backend == store.backend

    def test_store_is_picklable(self, store):
        """Stores cross process boundaries inside engine workers."""
        store.put("k1", b"m", b"b")
        clone = pickle.loads(pickle.dumps(store))
        assert clone.get("k1") == (b"m", b"b")


class TestLocalDirLayout:
    """The directory backend keeps the historical file layout."""

    def test_files_on_disk(self, tmp_path):
        store = LocalDirStore(tmp_path)
        store.put("deadbeef", b"meta", b"blob")
        assert (tmp_path / "deadbeef.json").read_bytes() == b"meta"
        assert (tmp_path / "deadbeef.npz").read_bytes() == b"blob"

    def test_half_entry_is_absent(self, tmp_path):
        """A meta file without its blob (or vice versa) reads as missing."""
        store = LocalDirStore(tmp_path)
        store.put("k", b"meta", b"blob")
        (tmp_path / "k.npz").unlink()
        assert store.get("k") is None

    def test_no_temp_file_residue(self, tmp_path):
        store = LocalDirStore(tmp_path)
        for i in range(20):
            store.put("k", f"meta{i}".encode(), b"blob" * i)
        assert not list(tmp_path.glob("*.tmp"))


class TestOpenStore:
    def test_bare_path_is_dir_backend(self, tmp_path):
        store = open_store(str(tmp_path / "c"))
        assert isinstance(store, LocalDirStore)

    def test_dir_scheme(self, tmp_path):
        store = open_store(f"dir:{tmp_path}/c")
        assert isinstance(store, LocalDirStore)

    def test_sqlite_scheme(self, tmp_path):
        store = open_store(f"sqlite:{tmp_path}/c.db")
        assert isinstance(store, SqliteStore)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown cache backend"):
            open_store("redis:somewhere")

    def test_store_instance_passes_through(self, tmp_path):
        store = SqliteStore(tmp_path / "c.db")
        assert open_store(store) is store
