"""Shard manifests and the resumable sweep runner.

The load-bearing promises:

* partitioning is deterministic and content-keyed, so resume can verify
  it is being fed the *same* sweep;
* a resumed sweep re-executes **zero** jobs from ``done`` shards;
* a failed shard is isolated — later shards still run — and retried on
  the next resume;
* a ``done`` shard whose cache entries vanished is demoted and re-run
  instead of silently returning holes.
"""

from __future__ import annotations

import json

import pytest

from repro.config import PearlConfig, PowerScalingConfig, SimulationConfig
from repro.experiments.cache import ResultCache
from repro.experiments.parallel import JobSpec, pair_spec, trace_job
from repro.experiments.runner import experiment_pairs
from repro.experiments.service.manifest import (
    MANIFEST_FORMAT,
    Shard,
    ShardStatus,
    SweepManifest,
    partition_specs,
    sweep_key,
)
from repro.experiments.service.sweeper import SweepRunner


@pytest.fixture
def tiny_sim_config() -> PearlConfig:
    return PearlConfig(
        simulation=SimulationConfig(warmup_cycles=100, measure_cycles=1_000),
        power_scaling=PowerScalingConfig(reservation_window=200),
    )


@pytest.fixture
def specs(tiny_sim_config):
    """Seven cheap trace-statistics jobs (no network simulation)."""
    pair = experiment_pairs(quick=True)[0]
    return [
        trace_job(tiny_sim_config, pair_spec(pair, seed), seed=seed)
        for seed in range(1, 8)
    ]


@pytest.fixture
def cache(tmp_path):
    return ResultCache(directory=tmp_path / "cache")


class TestPartitioning:
    def test_contiguous_and_deterministic(self):
        keys = [f"{i:02d}" * 32 for i in range(7)]
        shards = partition_specs(keys, shard_size=3)
        assert [s.indices for s in shards] == [[0, 1, 2], [3, 4, 5], [6]]
        again = partition_specs(keys, shard_size=3)
        assert [s.shard_id for s in shards] == [s.shard_id for s in again]

    def test_shard_id_tracks_membership(self):
        keys = [f"{i:02d}" * 32 for i in range(4)]
        a = partition_specs(keys, shard_size=2)
        b = partition_specs(list(reversed(keys)), shard_size=2)
        assert {s.shard_id for s in a}.isdisjoint({s.shard_id for s in b})

    def test_sweep_key_is_order_sensitive(self):
        keys = ["a" * 64, "b" * 64]
        assert sweep_key(keys) != sweep_key(list(reversed(keys)))

    def test_bad_shard_size_rejected(self):
        with pytest.raises(ValueError, match="shard_size"):
            partition_specs(["a" * 64], shard_size=0)


class TestManifestPersistence:
    KEYS = [f"{i:02d}" * 32 for i in range(5)]

    def test_create_load_roundtrip(self, tmp_path):
        manifest = SweepManifest.create(
            tmp_path, self.KEYS, shard_size=2, salt="s1"
        )
        loaded = SweepManifest.load(tmp_path)
        assert loaded.sweep_id == manifest.sweep_id
        assert loaded.salt == "s1"
        assert [s.to_dict() for s in loaded.shards] == [
            s.to_dict() for s in manifest.shards
        ]

    def test_transitions_checkpoint_immediately(self, tmp_path):
        manifest = SweepManifest.create(
            tmp_path, self.KEYS, shard_size=2, salt="s1"
        )
        shard = manifest.shards[0]
        manifest.mark_running(shard)
        manifest.mark_done(shard)
        on_disk = SweepManifest.load(tmp_path)
        assert on_disk.shards[0].status == ShardStatus.DONE
        assert on_disk.shards[0].attempts == 1
        assert on_disk.shards[0].worker

        manifest.mark_failed(manifest.shards[1], "boom" * 500)
        on_disk = SweepManifest.load(tmp_path)
        assert on_disk.shards[1].status == ShardStatus.FAILED
        assert len(on_disk.shards[1].error) <= 500

        manifest.reset_shard(shard)
        assert SweepManifest.load(tmp_path).shards[0].status == (
            ShardStatus.PENDING
        )

    def test_unknown_format_rejected(self, tmp_path):
        manifest = SweepManifest.create(
            tmp_path, self.KEYS, shard_size=2, salt="s1"
        )
        doc = json.loads(manifest.path.read_text())
        doc["format"] = MANIFEST_FORMAT + 1
        manifest.path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="manifest format"):
            SweepManifest.load(tmp_path)

    def test_validate_specs_rejects_different_sweep(self, tmp_path):
        manifest = SweepManifest.create(
            tmp_path, self.KEYS, shard_size=2, salt="s1"
        )
        with pytest.raises(ValueError, match="sweep mismatch"):
            manifest.validate_specs(list(reversed(self.KEYS)))

    def test_counts(self, tmp_path):
        manifest = SweepManifest.create(
            tmp_path, self.KEYS, shard_size=2, salt="s1"
        )
        manifest.mark_done(manifest.shards[0])
        manifest.mark_failed(manifest.shards[1], "x")
        assert manifest.counts() == {"pending": 1, "done": 1, "failed": 1}


def _fingerprint(result):
    return (result.kind, dict(result.extras))


class TestSweepRunner:
    def test_cold_run_fills_every_slot(self, specs, cache, tmp_path):
        runner = SweepRunner(cache, jobs=1, shard_size=3)
        results, report = runner.run(specs, tmp_path / "m")
        assert all(r is not None for r in results)
        assert not report.resumed
        assert report.shards_total == 3
        assert report.shards_executed == 3
        assert report.jobs_executed == len(specs)
        counts = SweepManifest.load(tmp_path / "m").counts()
        assert counts == {"pending": 0, "done": 3, "failed": 0}

    def test_resume_executes_zero_jobs(self, specs, cache, tmp_path):
        runner = SweepRunner(cache, jobs=1, shard_size=3)
        cold, _ = runner.run(specs, tmp_path / "m")
        resumed, report = runner.run(specs, tmp_path / "m", resume=True)
        assert report.resumed
        assert report.jobs_executed == 0
        assert report.shards_executed == 0
        assert report.shards_skipped == 3
        assert [_fingerprint(r) for r in resumed] == [
            _fingerprint(r) for r in cold
        ]

    def test_resume_without_manifest_is_loud(self, specs, cache, tmp_path):
        runner = SweepRunner(cache, jobs=1, shard_size=3)
        with pytest.raises(FileNotFoundError, match="--resume"):
            runner.run(specs, tmp_path / "m", resume=True)

    def test_resume_with_different_specs_is_loud(
        self, specs, cache, tmp_path
    ):
        runner = SweepRunner(cache, jobs=1, shard_size=3)
        runner.run(specs, tmp_path / "m")
        with pytest.raises(ValueError, match="sweep mismatch"):
            runner.run(list(reversed(specs)), tmp_path / "m", resume=True)

    def test_failed_shard_is_isolated_then_retried(
        self, specs, cache, tmp_path, tiny_sim_config
    ):
        """One poison job fails its shard; other shards run; resume heals."""
        pair = experiment_pairs(quick=True)[0]
        poison = JobSpec(
            kind="does-not-exist",
            config=tiny_sim_config,
            trace=pair_spec(pair, 99),
            seed=99,
        )
        mixed = specs[:3] + [poison] + specs[3:6]
        runner = SweepRunner(cache, jobs=1, shard_size=3)
        results, report = runner.run(mixed, tmp_path / "m")
        assert report.shards_failed == 1
        assert report.shards_executed == 2
        # The poison shard's slots are None; healthy shards completed.
        assert results[3] is None and results[4] is None and results[5] is None
        assert all(r is not None for r in results[:3] + results[6:])

        # Resume with the poison replaced by a healthy job of the same
        # sweep?  No — that is a different sweep.  Retry the same sweep:
        # the failed shard re-runs (and fails again), done shards skip.
        _, retry = runner.run(mixed, tmp_path / "m", resume=True)
        assert retry.shards_skipped == 2
        assert retry.shards_failed == 1

    def test_done_shard_with_lost_cache_entries_reruns(
        self, specs, cache, tmp_path
    ):
        runner = SweepRunner(cache, jobs=1, shard_size=3)
        cold, _ = runner.run(specs, tmp_path / "m")
        # Simulate a pruned/corrupted cache: drop one member of shard 0.
        cache.store.delete(cache.key_for(specs[1]))
        resumed, report = runner.run(specs, tmp_path / "m", resume=True)
        assert report.shards_skipped == 2
        assert report.shards_executed == 1
        assert all(r is not None for r in resumed)
        assert [_fingerprint(r) for r in resumed] == [
            _fingerprint(r) for r in cold
        ]
        counts = SweepManifest.load(tmp_path / "m").counts()
        assert counts["done"] == 3

    def test_serial_equals_sharded(self, specs, cache, tmp_path):
        """Sharded execution is bit-identical to direct serial runs."""
        from repro.experiments.parallel import execute_job

        direct = [execute_job(spec) for spec in specs]
        results, _ = SweepRunner(cache, jobs=1, shard_size=2).run(
            specs, tmp_path / "m"
        )
        assert [_fingerprint(r) for r in results] == [
            _fingerprint(r) for r in direct
        ]


class TestShardRoundtrip:
    def test_shard_dict_roundtrip(self):
        shard = Shard(
            shard_id="a" * 64,
            indices=[0, 1],
            spec_keys=["b" * 64, "c" * 64],
            status=ShardStatus.FAILED,
            attempts=2,
            error="err",
            completed_at=None,
            worker="u@h:1",
        )
        assert Shard.from_dict(shard.to_dict()) == shard
