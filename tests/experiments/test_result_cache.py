"""The persistent result cache: hits, invalidation and corruption.

Covers the three behaviours the cache promises:

* a hit reproduces the computed result bit-for-bit;
* changing any content input — a config field, the trace seed, the
  code-version salt — misses instead of returning stale numbers;
* corrupted or truncated entries are evicted and recomputed, never
  crashed on.
"""

from __future__ import annotations

import dataclasses
import time

import pytest

from repro.config import (
    PearlConfig,
    PowerScalingConfig,
    SimulationConfig,
)
from repro.experiments.cache import (
    CODE_VERSION,
    ResultCache,
    canonical_json,
    job_key,
)
from repro.experiments.parallel import (
    ExperimentEngine,
    execute_job,
    pair_spec,
    pearl_job,
    trace_job,
)
from repro.experiments.runner import experiment_pairs


@pytest.fixture
def tiny_sim_config() -> PearlConfig:
    return PearlConfig(
        simulation=SimulationConfig(warmup_cycles=100, measure_cycles=1_000),
        power_scaling=PowerScalingConfig(reservation_window=200),
    )


@pytest.fixture
def spec(tiny_sim_config):
    pair = experiment_pairs(quick=True)[0]
    return pearl_job(tiny_sim_config, pair_spec(pair, 3), seed=3)


def _fingerprint(result):
    return (
        result.kind,
        result.stats.to_dict() if result.stats is not None else None,
        dict(result.state_residency),
        result.mean_laser_power_w,
        result.laser_stall_cycles,
        list(result.ml_predictions),
        list(result.ml_labels),
        dict(result.extras),
    )


class TestHits:
    def test_roundtrip_is_bit_identical(self, tmp_path, spec):
        cache = ResultCache(directory=tmp_path)
        computed = execute_job(spec)
        cache.put(spec, computed)
        hit = cache.get(spec)
        assert hit is not None
        assert _fingerprint(hit) == _fingerprint(computed)
        assert cache.hits == 1 and cache.errors == 0

    def test_trace_job_roundtrip(self, tmp_path, tiny_sim_config):
        """Stats-free results (trace jobs) also round-trip."""
        pair = experiment_pairs(quick=True)[0]
        spec = trace_job(tiny_sim_config, pair_spec(pair, 3))
        cache = ResultCache(directory=tmp_path)
        computed = execute_job(spec)
        cache.put(spec, computed)
        hit = cache.get(spec)
        assert hit is not None
        assert hit.stats is None
        assert hit.extras == computed.extras

    def test_empty_cache_misses(self, tmp_path, spec):
        cache = ResultCache(directory=tmp_path)
        assert cache.get(spec) is None
        assert cache.misses == 1


class TestInvalidation:
    def test_config_field_change_misses(self, tmp_path, spec, tiny_sim_config):
        cache = ResultCache(directory=tmp_path)
        cache.put(spec, execute_job(spec))
        changed_config = dataclasses.replace(
            tiny_sim_config,
            power_scaling=PowerScalingConfig(reservation_window=400),
        )
        changed = dataclasses.replace(spec, config=changed_config)
        assert cache.get(changed) is None

    def test_trace_seed_change_misses(self, tmp_path, spec):
        cache = ResultCache(directory=tmp_path)
        cache.put(spec, execute_job(spec))
        changed = dataclasses.replace(
            spec, trace=dataclasses.replace(spec.trace, seed=99)
        )
        assert cache.get(changed) is None

    def test_salt_change_misses(self, tmp_path, spec):
        cache = ResultCache(directory=tmp_path)
        cache.put(spec, execute_job(spec))
        bumped = ResultCache(directory=tmp_path, salt=CODE_VERSION + "-next")
        assert bumped.get(spec) is None

    def test_key_is_stable_across_processes(self, spec):
        """Keys depend only on content, not object identity."""
        assert job_key(spec.payload()) == job_key(spec.payload())
        assert ResultCache().key_for(spec) == ResultCache().key_for(spec)

    def test_canonical_json_sorts_keys(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'


class TestCorruption:
    def _primed(self, tmp_path, spec):
        cache = ResultCache(directory=tmp_path)
        cache.put(spec, execute_job(spec))
        json_path = tmp_path / f"{cache.key_for(spec)}.json"
        npz_path = tmp_path / f"{cache.key_for(spec)}.npz"
        assert json_path.exists() and npz_path.exists()
        return cache, json_path, npz_path

    def test_corrupted_json_recomputed(self, tmp_path, spec):
        cache, json_path, npz_path = self._primed(tmp_path, spec)
        json_path.write_text("{ not json at all")
        assert cache.get(spec) is None
        assert cache.errors == 1
        # The bad entry was evicted, so the slot is clean for a re-put.
        assert not json_path.exists()
        cache.put(spec, execute_job(spec))
        assert cache.get(spec) is not None

    def test_truncated_npz_recomputed(self, tmp_path, spec):
        cache, json_path, npz_path = self._primed(tmp_path, spec)
        npz_path.write_bytes(npz_path.read_bytes()[:10])
        assert cache.get(spec) is None
        assert cache.errors == 1

    def test_missing_npz_recomputed(self, tmp_path, spec):
        cache, json_path, npz_path = self._primed(tmp_path, spec)
        npz_path.unlink()
        assert cache.get(spec) is None

    def test_unknown_entry_format_recomputed(self, tmp_path, spec):
        cache, json_path, npz_path = self._primed(tmp_path, spec)
        json_path.write_text('{"format": 999}\n')
        assert cache.get(spec) is None
        assert cache.errors == 1


class TestTornPairDetection:
    """Format-2 entries bind meta to blob by digest (torn pairs heal)."""

    def test_mismatched_blob_is_evicted_not_decoded(
        self, tmp_path, tiny_sim_config
    ):
        """A meta/blob pair mixed from two writers reads as a miss."""
        import io

        import numpy as np

        pair = experiment_pairs(quick=True)[0]
        spec = trace_job(tiny_sim_config, pair_spec(pair, 1), seed=1)
        cache = ResultCache(directory=tmp_path)
        cache.put(spec, execute_job(spec))
        key = cache.key_for(spec)
        # Interleave: the committed meta now sits over a *different but
        # perfectly decodable* blob — the torn-pair shape a crash
        # between two racing writers leaves behind.  Only the digest in
        # the meta document can catch this.
        buffer = io.BytesIO()
        np.savez_compressed(
            buffer,
            latencies=np.array([1, 2, 3], dtype=np.int64),
            ml_predictions=np.array([], dtype=np.float64),
            ml_labels=np.array([], dtype=np.float64),
        )
        (tmp_path / f"{key}.npz").write_bytes(buffer.getvalue())
        assert cache.get(spec) is None
        assert cache.errors == 1
        assert not (tmp_path / f"{key}.json").exists()  # self-healed
        cache.put(spec, execute_job(spec))
        assert cache.get(spec) is not None

    def test_pre_digest_entries_self_heal(self, tmp_path, tiny_sim_config):
        """Format-1 entries (no digest) are evicted, not trusted."""
        pair = experiment_pairs(quick=True)[0]
        spec = trace_job(tiny_sim_config, pair_spec(pair, 1), seed=1)
        cache = ResultCache(directory=tmp_path)
        cache.put(spec, execute_job(spec))
        key = cache.key_for(spec)
        meta_path = tmp_path / f"{key}.json"
        import json as _json

        doc = _json.loads(meta_path.read_text())
        doc["format"] = 1
        doc.pop("blob_sha256")
        meta_path.write_text(_json.dumps(doc))
        assert cache.get(spec) is None
        assert cache.errors == 1
        cache.put(spec, execute_job(spec))
        assert cache.get(spec) is not None


def _hammer_cache(backend_spec, spec, result, rounds, failures):
    """One concurrent writer+reader process (top-level: picklable)."""
    try:
        cache = ResultCache(store=backend_spec)
        for _ in range(rounds):
            cache.put(spec, result)
            hit = cache.get(spec)
            if hit is not None and hit.extras != result.extras:
                failures.put("decoded entry does not match what was written")
        if cache.errors:
            failures.put(f"reader saw {cache.errors} corrupt entries")
    except Exception as exc:  # noqa: BLE001 - reported to the parent
        failures.put(repr(exc))


class TestConcurrentWriters:
    """Racing same-key writers across real processes never tear entries."""

    @pytest.mark.parametrize("backend", ["dir", "sqlite"])
    def test_cross_process_same_key_writers(
        self, tmp_path, tiny_sim_config, backend
    ):
        import multiprocessing

        if backend == "dir":
            backend_spec = f"dir:{tmp_path / 'cache'}"
        else:
            backend_spec = f"sqlite:{tmp_path / 'cache.db'}"
        pair = experiment_pairs(quick=True)[0]
        spec = trace_job(tiny_sim_config, pair_spec(pair, 1), seed=1)
        result = execute_job(spec)

        ctx = multiprocessing.get_context("fork")
        failures = ctx.Queue()
        workers = [
            ctx.Process(
                target=_hammer_cache,
                args=(backend_spec, spec, result, 25, failures),
            )
            for _ in range(4)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
            assert worker.exitcode == 0
        assert failures.empty(), failures.get()

        # After the storm: exactly one committed, decodable entry.
        survivor = ResultCache(store=backend_spec)
        hit = survivor.get(spec)
        assert hit is not None
        assert hit.extras == result.extras
        assert survivor.errors == 0
        assert survivor.stats().entries == 1
        if backend == "dir":
            assert not list((tmp_path / "cache").glob("*.tmp"))


class TestPrune:
    def _filled(self, tmp_path, tiny_sim_config, count=3):
        cache = ResultCache(directory=tmp_path)
        pair = experiment_pairs(quick=True)[0]
        specs = [
            trace_job(tiny_sim_config, pair_spec(pair, seed), seed=seed)
            for seed in range(1, count + 1)
        ]
        for spec in specs:
            cache.put(spec, execute_job(spec))
        return cache, specs

    def test_prune_by_age(self, tmp_path, tiny_sim_config):
        cache, _ = self._filled(tmp_path, tiny_sim_config)
        removed, removed_bytes = cache.prune(
            older_than=5.0, now=time.time() + 60
        )
        assert removed == 3
        assert removed_bytes > 0
        assert cache.stats().entries == 0

    def test_prune_keeps_young_entries(self, tmp_path, tiny_sim_config):
        cache, specs = self._filled(tmp_path, tiny_sim_config)
        removed, _ = cache.prune(older_than=3600.0)
        assert removed == 0
        assert cache.get(specs[0]) is not None

    def test_prune_to_size_budget_evicts_oldest_first(
        self, tmp_path, tiny_sim_config
    ):
        import os as _os

        cache, specs = self._filled(tmp_path, tiny_sim_config)
        oldest = cache.key_for(specs[0])
        past = time.time() - 1000
        for suffix in (".json", ".npz"):
            _os.utime(tmp_path / f"{oldest}{suffix}", (past, past))
        total = cache.stats().total_bytes
        removed, _ = cache.prune(max_bytes=total - 1)
        assert removed == 1
        assert cache.get(specs[0]) is None  # the back-dated entry went
        assert cache.get(specs[1]) is not None

    def test_prune_everything(self, tmp_path, tiny_sim_config):
        cache, specs = self._filled(tmp_path, tiny_sim_config)
        removed, _ = cache.prune(max_bytes=0)
        assert removed == 3
        assert all(cache.get(spec) is None for spec in specs)


class TestSqliteBackend:
    def test_roundtrip_is_bit_identical(self, tmp_path, spec):
        cache = ResultCache(store=f"sqlite:{tmp_path / 'c.db'}")
        computed = execute_job(spec)
        cache.put(spec, computed)
        hit = cache.get(spec)
        assert hit is not None
        assert _fingerprint(hit) == _fingerprint(computed)

    def test_env_var_selects_backend(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            "PEARL_RESULT_CACHE_BACKEND", f"sqlite:{tmp_path / 'env.db'}"
        )
        cache = ResultCache()
        assert cache.store.backend == "sqlite"
        assert cache.directory == tmp_path / "env.db"


class TestEngineIntegration:
    def test_warm_rerun_identical_and_10x_faster(
        self, tmp_path, tiny_sim_config
    ):
        """Acceptance: a warm-cache rerun is >= 10x faster than cold."""
        pairs = experiment_pairs(quick=True)
        specs = [
            pearl_job(tiny_sim_config, pair_spec(pair, 1 + i), seed=1 + i)
            for i, pair in enumerate(pairs)
        ]

        cold_engine = ExperimentEngine(
            jobs=1, cache=ResultCache(directory=tmp_path)
        )
        start = time.perf_counter()
        cold = cold_engine.run(specs)
        cold_seconds = time.perf_counter() - start
        assert cold_engine.cache.hits == 0

        warm_engine = ExperimentEngine(
            jobs=1, cache=ResultCache(directory=tmp_path)
        )
        start = time.perf_counter()
        warm = warm_engine.run(specs)
        warm_seconds = time.perf_counter() - start
        assert warm_engine.cache.hits == len(specs)

        for a, b in zip(cold, warm):
            assert _fingerprint(a) == _fingerprint(b)
        assert warm_seconds * 10 <= cold_seconds, (
            f"warm rerun took {warm_seconds:.3f}s vs cold "
            f"{cold_seconds:.3f}s — expected >= 10x speedup"
        )

    def test_partial_cache_computes_only_missing(
        self, tmp_path, tiny_sim_config
    ):
        pairs = experiment_pairs(quick=True)[:2]
        specs = [
            pearl_job(tiny_sim_config, pair_spec(pair, 1 + i), seed=1 + i)
            for i, pair in enumerate(pairs)
        ]
        cache = ResultCache(directory=tmp_path)
        cache.put(specs[0], execute_job(specs[0]))
        engine = ExperimentEngine(jobs=1, cache=cache)
        results = engine.run(specs)
        assert len(results) == 2
        assert cache.hits == 1
        # The fresh job was persisted: a second engine hits both.
        second = ExperimentEngine(
            jobs=1, cache=ResultCache(directory=tmp_path)
        )
        second.run(specs)
        assert second.cache.hits == 2
