"""Tests for repro.experiments.report (rendering only — no sweeps)."""

from repro.experiments import REGISTRY
from repro.experiments.report import PAPER_NOTES, render_markdown
from repro.experiments.runner import ExperimentResult


def _fake_results():
    results = []
    for exp_id in REGISTRY:
        result = ExperimentResult(name=f"{exp_id}: fake")
        result.add_row(metric="x", value=1.0)
        results.append(result)
    return results


class TestRenderMarkdown:
    def test_every_experiment_sectioned(self):
        text = render_markdown(_fake_results(), quick=True)
        for exp_id in REGISTRY:
            assert f"## {exp_id}" in text

    def test_paper_notes_included(self):
        text = render_markdown(_fake_results(), quick=True)
        assert "40-65% power" in text
        assert "0.79->0.68" in text

    def test_mode_line(self):
        quick_text = render_markdown(_fake_results(), quick=True)
        full_text = render_markdown(_fake_results(), quick=False)
        assert "quick" in quick_text
        assert "full" in full_text

    def test_notes_cover_registry(self):
        assert set(PAPER_NOTES) == set(REGISTRY)

    def test_tables_fenced(self):
        text = render_markdown(_fake_results(), quick=True)
        assert text.count("```") == 2 * len(REGISTRY)
