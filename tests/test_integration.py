"""End-to-end integration tests: paper-shape invariants at small scale."""

import pytest

from repro.config import PearlConfig, SimulationConfig
from repro.noc.cmesh import CMeshNetwork
from repro.noc.network import PearlNetwork
from repro.noc.router import PowerPolicyKind
from repro.power.energy import energy_per_bit_pj
from repro.traffic.benchmarks import CPU_BENCHMARKS, GPU_BENCHMARKS
from repro.traffic.synthetic import generate_pair_trace


@pytest.fixture(scope="module")
def config():
    return PearlConfig(
        simulation=SimulationConfig(warmup_cycles=200, measure_cycles=3_000)
    ).with_reservation_window(250)


@pytest.fixture(scope="module")
def trace(config):
    return generate_pair_trace(
        CPU_BENCHMARKS["x264"],
        GPU_BENCHMARKS["reduction"],
        config.architecture,
        config.simulation.total_cycles,
        seed=13,
    )


@pytest.fixture(scope="module")
def baseline(config, trace):
    return PearlNetwork(config, power_policy=PowerPolicyKind.STATIC).run(trace)


class TestPaperShapeInvariants:
    def test_pearl_dyn_beats_cmesh_throughput(self, config, trace, baseline):
        """Headline claim 1: PEARL-Dyn outperforms the CMESH baseline."""
        cmesh = CMeshNetwork(simulation=config.simulation).run(trace)
        assert baseline.throughput() > cmesh.throughput_flits_per_cycle()

    def test_pearl_dyn_cheaper_per_bit_than_cmesh_constrained(
        self, config, trace
    ):
        """Fig. 5 shape at 16 WL / divisor-8 CMESH."""
        pearl = PearlNetwork(config, static_state=16).run(trace)
        cmesh = CMeshNetwork(simulation=config.simulation, bandwidth_divisor=8).run(
            trace
        )
        assert energy_per_bit_pj(pearl.stats) < energy_per_bit_pj(cmesh)

    def test_reactive_scaling_saves_power(self, config, trace, baseline):
        """Headline claim 2, savings side."""
        scaled = PearlNetwork(
            config, power_policy=PowerPolicyKind.REACTIVE
        ).run(trace)
        savings = 1 - scaled.mean_laser_power_w / baseline.mean_laser_power_w
        assert savings > 0.15

    def test_reactive_throughput_loss_bounded(self, config, trace, baseline):
        """Headline claim 2, loss side (paper: 0-14%)."""
        scaled = PearlNetwork(
            config, power_policy=PowerPolicyKind.REACTIVE
        ).run(trace)
        loss = 1 - scaled.throughput() / baseline.throughput()
        assert loss < 0.25

    def test_static_states_order_throughput(self, config, trace):
        """Fewer wavelengths can never help throughput."""
        thr = {
            wl: PearlNetwork(config, static_state=wl).run(trace).throughput()
            for wl in (64, 16)
        }
        assert thr[64] >= thr[16]

    def test_static_states_order_power(self, config, trace):
        power = {
            wl: PearlNetwork(config, static_state=wl)
            .run(trace)
            .mean_laser_power_w
            for wl in (64, 16)
        }
        assert power[64] > power[16]

    def test_slow_laser_hurts_throughput_not_power(self, config, trace):
        """Fig. 11 shape: turn-on time costs throughput, not power."""
        fast_cfg = config.with_turn_on_ns(2.0)
        slow_cfg = config.with_turn_on_ns(32.0)
        fast = PearlNetwork(
            fast_cfg, power_policy=PowerPolicyKind.REACTIVE
        ).run(trace)
        slow = PearlNetwork(
            slow_cfg, power_policy=PowerPolicyKind.REACTIVE
        ).run(trace)
        assert slow.laser_stall_cycles > fast.laser_stall_cycles
        # Power varies little (paper: <1%; allow slack at tiny scale).
        assert slow.mean_laser_power_w == pytest.approx(
            fast.mean_laser_power_w, rel=0.15
        )

    @pytest.mark.slow
    def test_ml_policy_end_to_end(self, config, trace, tiny_trained_model):
        """A trained model drives the network and saves power."""
        baseline = PearlNetwork(config).run(trace)
        ml_config = config.with_reservation_window(200)
        ml = PearlNetwork(
            ml_config,
            power_policy=PowerPolicyKind.ML,
            ml_model=tiny_trained_model.model,
        ).run(trace)
        assert ml.mean_laser_power_w < baseline.mean_laser_power_w
        assert ml.throughput() > 0.5 * baseline.throughput()


class TestConservation:
    def test_no_packet_loss_at_moderate_load(self, config, trace):
        """Delivered + still-queued == injected (no silent drops)."""
        network = PearlNetwork(config)
        result = network.run(trace)
        injected = sum(
            c.packets_injected for c in result.stats.counters.values()
        )
        delivered = result.stats.packets_delivered
        in_buffers = sum(r.buffers.total_packets for r in network.routers)
        in_ejection = sum(
            len(pool) for r in network.routers for pool in r.ejection.values()
        )
        in_flight = len(network._in_flight)
        backlog = network.injection_backlog_size
        assert delivered + in_buffers + in_ejection + in_flight + backlog >= injected

    def test_gpu_does_not_starve_cpu(self, config, trace, baseline):
        """DBA goal iii: CPU packets keep flowing under GPU load."""
        from repro.noc.packet import CoreType

        cpu = baseline.stats.counters[CoreType.CPU]
        assert cpu.packets_delivered > 0
        assert cpu.mean_latency < 2_000
