"""Sanity checks over examples/ — they must at least parse and expose
a ``main`` callable (full runs take minutes; CI smoke only compiles)."""

import ast
import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", SCRIPTS, ids=lambda p: p.name)
class TestExampleScripts:
    def test_parses(self, script):
        ast.parse(script.read_text())

    def test_has_module_docstring(self, script):
        tree = ast.parse(script.read_text())
        assert ast.get_docstring(tree), f"{script.name} missing docstring"

    def test_defines_main(self, script):
        tree = ast.parse(script.read_text())
        functions = {
            node.name
            for node in tree.body
            if isinstance(node, ast.FunctionDef)
        }
        assert "main" in functions

    def test_guarded_entry_point(self, script):
        assert 'if __name__ == "__main__":' in script.read_text()

    def test_imports_resolve(self, script):
        """Importing the module must not fail (no heavy work at import)."""
        name = f"example_{script.stem}"
        spec = importlib.util.spec_from_file_location(name, script)
        module = importlib.util.module_from_spec(spec)
        sys.modules[name] = module
        try:
            spec.loader.exec_module(module)
            assert callable(module.main)
        finally:
            sys.modules.pop(name, None)


def test_expected_example_count():
    """The README promises at least seven runnable examples."""
    assert len(SCRIPTS) >= 7
