"""Tests for repro.config_io — JSON round-tripping of configurations."""

import json

import pytest

from repro.config import PearlConfig, PhotonicConfig, SimulationConfig
from repro.config_io import (
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
)


class TestRoundTrip:
    def test_default_config(self, tmp_path):
        config = PearlConfig()
        path = save_config(config, tmp_path / "config.json")
        assert load_config(path) == config

    def test_customised_config(self, tmp_path):
        config = (
            PearlConfig(
                simulation=SimulationConfig(
                    warmup_cycles=123, measure_cycles=456
                )
            )
            .with_reservation_window(777)
            .with_turn_on_ns(16.0)
        )
        path = save_config(config, tmp_path / "config.json")
        loaded = load_config(path)
        assert loaded == config
        assert loaded.ml.reservation_window == 777
        assert loaded.photonic.laser_turn_on_ns == 16.0

    def test_tuples_restored(self, tmp_path):
        config = PearlConfig(
            photonic=PhotonicConfig(
                wavelength_states=(64, 32, 16),
                laser_power_w=(1.16, 0.581, 0.29),
                serialization_cycles=(2, 4, 8),
            )
        )
        path = save_config(config, tmp_path / "config.json")
        loaded = load_config(path)
        assert loaded.photonic.wavelength_states == (64, 32, 16)
        assert isinstance(loaded.photonic.wavelength_states, tuple)

    def test_json_is_human_readable(self, tmp_path):
        path = save_config(PearlConfig(), tmp_path / "config.json")
        data = json.loads(path.read_text())
        assert data["architecture"]["num_clusters"] == 16
        assert data["photonic"]["laser_power_w"][0] == 1.16


class TestStrictness:
    def test_unknown_section_rejected(self):
        data = config_to_dict(PearlConfig())
        data["bogus"] = {}
        with pytest.raises(ValueError):
            config_from_dict(data)

    def test_unknown_field_rejected(self):
        data = config_to_dict(PearlConfig())
        data["architecture"]["bogus_field"] = 1
        with pytest.raises(ValueError):
            config_from_dict(data)

    def test_partial_config_uses_defaults(self):
        config = config_from_dict({"simulation": {"measure_cycles": 999}})
        assert config.simulation.measure_cycles == 999
        assert config.architecture.num_clusters == 16

    def test_invalid_values_still_validated(self):
        with pytest.raises(ValueError):
            config_from_dict({"architecture": {"num_clusters": 0}})
