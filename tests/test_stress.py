"""Stress and failure-injection tests: degraded and adversarial modes.

These exercise the regimes the paper's controllers must survive:
links pinned at the lowest power state, all-to-one hotspots at
saturation, laser stabilization storms, and buffer exhaustion.  The
invariants: no crash, no packet loss (conservation), controllers
recover.
"""

import pytest

from repro.config import (
    MLConfig,
    PearlConfig,
    PhotonicConfig,
    PowerScalingConfig,
    SimulationConfig,
)
from repro.noc.network import PearlNetwork
from repro.noc.router import PowerPolicyKind
from repro.noc.packet import CoreType
from repro.traffic.synthetic import hotspot_trace, uniform_random_trace
from repro.traffic.trace import Trace


def _config(measure=2_000, warmup=0, window=200, turn_on_ns=2.0):
    return PearlConfig(
        photonic=PhotonicConfig(laser_turn_on_ns=turn_on_ns),
        power_scaling=PowerScalingConfig(reservation_window=window),
        ml=MLConfig(reservation_window=window),
        simulation=SimulationConfig(
            warmup_cycles=warmup, measure_cycles=measure
        ),
    )


def _conservation(network, stats):
    """Injected == delivered + still inside the network.

    Backlogged packets are *not* counted: ``on_injected`` fires when a
    packet actually enters a router, so the backlog sits upstream of
    the injected count by design.
    """
    injected = sum(c.packets_injected for c in stats.counters.values())
    delivered = stats.packets_delivered
    queued = sum(r.buffers.total_packets for r in network.routers)
    ejecting = sum(
        len(pool) for r in network.routers for pool in r.ejection.values()
    ) + sum(len(r._ejection_backlog) for r in network.routers)
    in_flight = len(network._in_flight)
    return delivered + queued + ejecting + in_flight - injected


class TestDegradedLink:
    def test_pinned_at_lowest_state_still_delivers(self):
        """A network stuck at 8 WL is slow but correct."""
        trace = uniform_random_trace(rate=0.02, duration=2_000, seed=1)
        network = PearlNetwork(_config(measure=2_500), static_state=8)
        result = network.run(trace)
        assert result.stats.packets_delivered > 0
        assert _conservation(network, result.stats) == 0

    def test_slow_laser_storm(self):
        """32 ns turn-on with a tiny window forces constant stalls."""
        trace = uniform_random_trace(rate=0.05, duration=2_000, seed=2)
        network = PearlNetwork(
            _config(measure=2_500, window=100, turn_on_ns=32.0),
            power_policy=PowerPolicyKind.REACTIVE,
        )
        result = network.run(trace)
        assert result.laser_stall_cycles > 0
        assert result.stats.packets_delivered > 0
        assert _conservation(network, result.stats) == 0


class TestHotspot:
    def test_all_to_one_saturation_conserves_packets(self):
        trace = hotspot_trace(
            hotspot_router=0, rate=0.3, hotspot_fraction=0.9, duration=2_000
        )
        network = PearlNetwork(_config(measure=2_500))
        result = network.run(trace)
        assert _conservation(network, result.stats) == 0

    def test_hotspot_under_power_scaling(self):
        trace = hotspot_trace(
            hotspot_router=3, rate=0.2, hotspot_fraction=0.8, duration=2_000
        )
        network = PearlNetwork(
            _config(measure=2_500), power_policy=PowerPolicyKind.REACTIVE
        )
        result = network.run(trace)
        assert _conservation(network, result.stats) == 0
        # The hotspot's ejection pressure keeps it at higher states than
        # an idle router.
        hot = network.routers[3].laser.residency()
        assert sum(result.state_residency.values()) == pytest.approx(1.0)


class TestOverload:
    def test_extreme_injection_backpressures_not_drops(self):
        """At 0.9 packets/cycle/router everything backs up but nothing
        is lost."""
        trace = uniform_random_trace(rate=0.9, duration=800, seed=3)
        network = PearlNetwork(_config(measure=1_000))
        result = network.run(trace)
        assert network.injection_backlog_size > 0
        assert _conservation(network, result.stats) == 0

    def test_random_policy_under_load(self):
        trace = uniform_random_trace(rate=0.2, duration=1_500, seed=4)
        network = PearlNetwork(
            _config(measure=1_800), power_policy=PowerPolicyKind.RANDOM
        )
        result = network.run(trace)
        assert _conservation(network, result.stats) == 0

    def test_gpu_only_flood_cannot_wedge_cpu_queue(self):
        """With zero CPU traffic the GPU takes the whole link and the
        CPU pools stay empty (Algorithm 1 step 3b)."""
        trace = uniform_random_trace(
            CoreType.GPU, rate=0.4, duration=1_500, seed=5
        )
        network = PearlNetwork(_config(measure=1_800))
        network.run(trace)
        assert all(r.buffers.cpu.is_empty for r in network.routers)


class TestRecovery:
    def test_scaler_recovers_after_burst(self):
        """After a heavy burst ends, the reactive scaler returns to the
        low-power states."""
        burst = uniform_random_trace(rate=0.3, duration=1_000, seed=6)
        network = PearlNetwork(
            _config(measure=6_000, window=200),
            power_policy=PowerPolicyKind.REACTIVE,
        )
        network.run(burst)
        # Long quiet tail: every router should end at the lowest state.
        assert all(r.laser.state == 8 for r in network.routers)
