"""Tests for repro.traffic.analysis — burstiness/character metrics."""

import numpy as np
import pytest

from repro.noc.packet import CoreType
from repro.traffic.analysis import (
    TraceCharacter,
    characterize,
    compare_core_types,
    index_of_dispersion,
    lag1_autocorrelation,
    load_imbalance,
    peak_to_mean,
    windowed_counts,
)
from repro.traffic.benchmarks import CPU_BENCHMARKS, GPU_BENCHMARKS
from repro.traffic.synthetic import generate_pair_trace, generate_trace
from repro.traffic.trace import Trace


class TestWindowedCounts:
    def test_counts_bin_correctly(self):
        trace = generate_trace(
            CPU_BENCHMARKS["fluidanimate"], duration=2_000, seed=1
        )
        counts = windowed_counts(trace, window=500)
        assert counts.sum() == len(trace)
        assert counts.size == 4

    def test_filter_by_core_type(self):
        trace = generate_pair_trace(
            CPU_BENCHMARKS["fluidanimate"],
            GPU_BENCHMARKS["dct"],
            duration=2_000,
            seed=1,
        )
        cpu = windowed_counts(trace, core_type=CoreType.CPU).sum()
        gpu = windowed_counts(trace, core_type=CoreType.GPU).sum()
        assert cpu + gpu == len(trace)

    def test_empty_trace(self):
        assert windowed_counts(Trace([])).size == 0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            windowed_counts(Trace([]), window=0)


class TestMetrics:
    def test_idc_poisson_near_one(self):
        rng = np.random.default_rng(0)
        counts = rng.poisson(20, size=2_000)
        assert index_of_dispersion(counts) == pytest.approx(1.0, abs=0.15)

    def test_idc_constant_is_zero(self):
        assert index_of_dispersion(np.full(100, 7)) == 0.0

    def test_idc_empty(self):
        assert index_of_dispersion(np.zeros(0)) == 0.0

    def test_peak_to_mean(self):
        assert peak_to_mean(np.array([1.0, 1.0, 4.0])) == pytest.approx(2.0)

    def test_lag1_of_alternating_is_negative(self):
        counts = np.array([10, 0] * 50, dtype=float)
        assert lag1_autocorrelation(counts) < -0.9

    def test_lag1_of_trend_is_positive(self):
        assert lag1_autocorrelation(np.arange(100, dtype=float)) > 0.9

    def test_lag1_short_series(self):
        assert lag1_autocorrelation(np.array([1.0, 2.0])) == 0.0

    def test_load_imbalance_uniform(self):
        trace = generate_trace(
            CPU_BENCHMARKS["fluidanimate"], duration=10_000, seed=1
        )
        assert load_imbalance(trace) == pytest.approx(1.0, abs=0.3)

    def test_load_imbalance_empty(self):
        assert load_imbalance(Trace([])) == 0.0


class TestCharacterization:
    def test_gpu_traces_burstier_than_cpu(self):
        """The paper's premise holds per router, where scaling acts:
        GPU kernel bursts dominate CPU phase structure."""
        from repro.traffic.analysis import per_source_idc

        trace = generate_pair_trace(
            CPU_BENCHMARKS["fluidanimate"],
            GPU_BENCHMARKS["quasi_random"],
            duration=30_000,
            seed=2,
        )
        gpu_idc = per_source_idc(trace, core_type=CoreType.GPU)
        cpu_idc = per_source_idc(trace, core_type=CoreType.CPU)
        assert gpu_idc > cpu_idc
        characters = compare_core_types(trace, window=500)
        assert characters["gpu"].peak_to_mean > characters["cpu"].peak_to_mean

    def test_gpu_verdict_bursty(self):
        trace = generate_trace(
            GPU_BENCHMARKS["quasi_random"], duration=30_000, seed=3
        )
        character = characterize(trace, window=500)
        assert character.is_bursty()

    def test_character_fields_consistent(self):
        trace = generate_trace(
            CPU_BENCHMARKS["barnes"], duration=5_000, seed=4
        )
        character = characterize(trace)
        assert character.events == len(trace)
        assert character.mean_rate_per_cycle > 0

    def test_empty_character(self):
        character = characterize(Trace([]))
        assert character.events == 0
        assert not character.is_bursty()
