"""Tests for repro.traffic.cache_traffic — cache-driven trace generation."""

import pytest

from repro.config import ArchitectureConfig
from repro.noc.packet import CacheLevel, CoreType, PacketClass
from repro.traffic.benchmarks import CPU_BENCHMARKS, GPU_BENCHMARKS
from repro.traffic.cache_traffic import AddressStream, CacheTraceGenerator

import numpy as np

ARCH = ArchitectureConfig(num_clusters=4)


class TestAddressStream:
    def test_sequential_walk(self):
        stream = AddressStream(
            working_set_kb=4,
            base_address=0,
            rng=np.random.default_rng(0),
            sequential_prob=1.0,
        )
        a, b = stream.next_address(), stream.next_address()
        assert b - a == 64

    def test_wraps_working_set(self):
        stream = AddressStream(
            working_set_kb=1,
            base_address=0,
            rng=np.random.default_rng(0),
            sequential_prob=1.0,
        )
        addresses = [stream.next_address() for _ in range(64)]
        assert max(addresses) < 1024

    def test_random_jumps_stay_in_set(self):
        stream = AddressStream(
            working_set_kb=4,
            base_address=1 << 32,
            rng=np.random.default_rng(1),
            sequential_prob=0.0,
        )
        # Cold jumps (5%) leave the set; all others stay inside.
        inside = [
            (1 << 32) <= stream.next_address() < (1 << 32) + 4096 + (1 << 29)
            for _ in range(100)
        ]
        assert all(inside)

    def test_invalid_parameters(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            AddressStream(0, 0, rng)
        with pytest.raises(ValueError):
            AddressStream(4, 0, rng, sequential_prob=2.0)


class TestCacheTraceGenerator:
    @pytest.fixture(scope="class")
    def cpu_trace(self):
        generator = CacheTraceGenerator(ARCH)
        return generator.generate(
            CPU_BENCHMARKS["canneal"], duration=4_000, seed=3
        )

    @pytest.fixture(scope="class")
    def gpu_trace(self):
        generator = CacheTraceGenerator(ARCH)
        return generator.generate(
            GPU_BENCHMARKS["matrix_mult"], duration=4_000, seed=3
        )

    def test_produces_events(self, cpu_trace):
        assert len(cpu_trace) > 0

    def test_valid_destinations(self, cpu_trace):
        assert all(
            0 <= e.destination <= ARCH.l3_router_id for e in cpu_trace
        )

    def test_local_and_network_traffic_present(self, cpu_trace):
        local = [e for e in cpu_trace if e.source == e.destination]
        network = [e for e in cpu_trace if e.source != e.destination]
        assert local and network

    def test_l3_requests_labelled_l2_down(self, cpu_trace):
        for event in cpu_trace:
            if (
                event.destination == ARCH.l3_router_id
                and event.packet_class is PacketClass.REQUEST
            ):
                assert event.cache_level is CacheLevel.CPU_L2_DOWN

    def test_writebacks_are_responses(self, cpu_trace, gpu_trace):
        writebacks = [
            e
            for e in list(cpu_trace) + list(gpu_trace)
            if e.packet_class is PacketClass.RESPONSE
        ]
        assert all(e.size_flits == 5 for e in writebacks)

    def test_gpu_core_type(self, gpu_trace):
        assert all(e.core_type is CoreType.GPU for e in gpu_trace)

    def test_deterministic(self):
        generator = CacheTraceGenerator(ARCH)
        a = generator.generate(CPU_BENCHMARKS["barnes"], duration=2_000, seed=9)
        b = CacheTraceGenerator(ARCH).generate(
            CPU_BENCHMARKS["barnes"], duration=2_000, seed=9
        )
        assert a.events == b.events

    def test_shared_data_produces_peer_traffic(self):
        generator = CacheTraceGenerator(ARCH, shared_data_fraction=0.5)
        trace = generator.generate(
            CPU_BENCHMARKS["ocean"], duration=6_000, seed=5
        )
        peers = [
            e
            for e in trace
            if e.destination not in (e.source, ARCH.l3_router_id)
        ]
        assert peers, "coherence forwards should reach peer clusters"

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            CacheTraceGenerator(ARCH).generate(
                CPU_BENCHMARKS["barnes"], duration=0
            )

    def test_invalid_shared_fraction(self):
        with pytest.raises(ValueError):
            CacheTraceGenerator(ARCH, shared_data_fraction=1.5)
