"""Property-based invariants of the collective schedule compiler.

Cross-checks the compiled :func:`phase_timeline` / trace against the
analytical cost models in :func:`step_volumes`, and pins the contracts
the simulator relies on: barrier-ordered disjoint step windows, exact
volume conservation through packet chunking, per-seed determinism with
a seed-independent timeline, and PAM4 capacity dominating NRZ on every
ladder state.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ArchitectureConfig, PhotonicConfig
from repro.traffic.collectives import (
    COLLECTIVE_ALGORITHMS,
    DEFAULT_COMPUTE_GAP,
    DEFAULT_DRAIN_SLACK,
    DEFAULT_STEP_SPREAD,
    MAX_PACKET_FLITS,
    generate_collective_trace,
    phase_timeline,
    step_volumes,
    validate_collective,
)

ARCH = ArchitectureConfig()

algorithms = st.sampled_from(COLLECTIVE_ALGORITHMS)
payloads = st.integers(min_value=1, max_value=600)
durations = st.integers(min_value=2_000, max_value=30_000)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestVolumeConservation:
    @given(algorithm=algorithms, payload=payloads, duration=durations)
    @settings(max_examples=40, deadline=None)
    def test_compiled_steps_match_closed_form(
        self, algorithm, payload, duration
    ):
        """Every compiled step carries exactly its analytical volume."""
        steps = phase_timeline(
            algorithm, ARCH, duration=duration, payload_flits=payload
        )
        volumes = step_volumes(algorithm, ARCH.num_clusters, payload)
        for step in steps:
            assert step.flits == volumes[step.step_index % len(volumes)]

    @given(algorithm=algorithms, payload=payloads, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_trace_conserves_schedule_volume(self, algorithm, payload, seed):
        """Chunking into <=MAX_PACKET_FLITS packets loses no flits."""
        duration = 8_000
        steps = phase_timeline(
            algorithm, ARCH, duration=duration, payload_flits=payload
        )
        trace = generate_collective_trace(
            algorithm, ARCH, duration=duration, seed=seed,
            payload_flits=payload,
        )
        assert sum(e.size_flits for e in trace.events) == sum(
            step.flits for step in steps
        )
        assert all(
            1 <= e.size_flits <= MAX_PACKET_FLITS for e in trace.events
        )


class TestBarrierOrdering:
    @given(algorithm=algorithms, payload=payloads, duration=durations)
    @settings(max_examples=40, deadline=None)
    def test_step_windows_disjoint_and_ordered(
        self, algorithm, payload, duration
    ):
        """Step k+1 never starts before step k's window has drained."""
        steps = phase_timeline(
            algorithm, ARCH, duration=duration, payload_flits=payload
        )
        for earlier, later in zip(steps, steps[1:]):
            assert later.step_index == earlier.step_index + 1
            assert (
                later.start_cycle
                >= earlier.end_cycle + DEFAULT_DRAIN_SLACK
            )
            assert later.phase_index >= earlier.phase_index
            if later.phase_index > earlier.phase_index:
                # A phase boundary additionally pays the compute gap.
                assert later.start_cycle >= (
                    earlier.end_cycle
                    + DEFAULT_DRAIN_SLACK
                    + DEFAULT_COMPUTE_GAP
                )
        for step in steps:
            assert step.end_cycle - step.start_cycle == DEFAULT_STEP_SPREAD
            assert step.end_cycle + DEFAULT_DRAIN_SLACK <= duration

    @given(algorithm=algorithms, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_packets_stay_inside_their_step_window(self, algorithm, seed):
        """Injection honours barriers: packets land in step windows."""
        duration = 8_000
        steps = phase_timeline(algorithm, ARCH, duration=duration)
        windows = [(s.start_cycle, s.end_cycle) for s in steps]
        trace = generate_collective_trace(
            algorithm, ARCH, duration=duration, seed=seed
        )
        for event in trace.events:
            assert any(
                start <= event.cycle < end for start, end in windows
            )


class TestSignalingCapacity:
    @given(state=st.sampled_from(PhotonicConfig().wavelength_states))
    @settings(max_examples=20, deadline=None)
    def test_pam4_capacity_dominates_nrz(self, state):
        """Two bits per symbol: PAM4 serializes every ladder state at
        least as fast as NRZ, at a strictly higher laser power."""
        nrz = PhotonicConfig(signaling="nrz")
        pam4 = PhotonicConfig(signaling="pam4")
        assert pam4.state_serialization_cycles(
            state
        ) <= nrz.state_serialization_cycles(state)
        assert pam4.state_power(state) > nrz.state_power(state)


class TestDeterminism:
    @given(algorithm=algorithms, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_same_seed_same_trace(self, algorithm, seed):
        a = generate_collective_trace(algorithm, ARCH, duration=6_000, seed=seed)
        b = generate_collective_trace(algorithm, ARCH, duration=6_000, seed=seed)
        assert a.events == b.events

    @given(
        algorithm=algorithms,
        seed_a=seeds,
        seed_b=seeds,
        payload=payloads,
    )
    @settings(max_examples=25, deadline=None)
    def test_timeline_is_seed_free(self, algorithm, seed_a, seed_b, payload):
        """Seeds move packets inside windows, never the windows (so the
        transfer multiset is identical across seeds too)."""
        steps = phase_timeline(
            algorithm, ARCH, duration=6_000, payload_flits=payload
        )
        a = generate_collective_trace(
            algorithm, ARCH, duration=6_000, seed=seed_a,
            payload_flits=payload,
        )
        b = generate_collective_trace(
            algorithm, ARCH, duration=6_000, seed=seed_b,
            payload_flits=payload,
        )

        def per_window(events):
            # Trace orders events by cycle, so bucket by step window
            # and compare the transfer multiset inside each.
            buckets = {step.start_cycle: [] for step in steps}
            for e in events:
                start = max(
                    s.start_cycle
                    for s in steps
                    if s.start_cycle <= e.cycle < s.end_cycle
                )
                buckets[start].append(
                    (e.source, e.destination, e.size_flits, e.core_type)
                )
            return {
                start: sorted(items) for start, items in buckets.items()
            }

        assert per_window(a.events) == per_window(b.events)


def test_unknown_algorithm_rejected():
    try:
        validate_collective("ring_of_fire")
    except ValueError as err:
        for name in COLLECTIVE_ALGORITHMS:
            assert name in str(err)
    else:
        raise AssertionError("expected ValueError")
