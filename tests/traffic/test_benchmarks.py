"""Tests for repro.traffic.benchmarks — the 24 workload profiles."""

import pytest

from repro.noc.packet import CoreType
from repro.traffic.benchmarks import (
    BenchmarkProfile,
    CPU_BENCHMARKS,
    CPU_TEST,
    CPU_TRAIN,
    CPU_VALIDATION,
    GPU_BENCHMARKS,
    GPU_TEST,
    GPU_TRAIN,
    GPU_VALIDATION,
    Phase,
    get_benchmark,
    pair_name,
)
from repro.traffic.benchmarks import test_pairs as paper_test_pairs
from repro.traffic.benchmarks import training_pairs, validation_pairs


class TestCatalogue:
    def test_twelve_each(self):
        assert len(CPU_BENCHMARKS) == 12
        assert len(GPU_BENCHMARKS) == 12

    def test_core_types_consistent(self):
        assert all(
            p.core_type is CoreType.CPU for p in CPU_BENCHMARKS.values()
        )
        assert all(
            p.core_type is CoreType.GPU for p in GPU_BENCHMARKS.values()
        )

    def test_gpu_benchmarks_are_bursty(self):
        assert all(p.is_bursty for p in GPU_BENCHMARKS.values())

    def test_cpu_benchmarks_not_bursty(self):
        assert not any(p.is_bursty for p in CPU_BENCHMARKS.values())

    def test_gpu_idle_level_below_one(self):
        """GPU profiles go quiet between kernels."""
        assert all(p.idle_level < 1.0 for p in GPU_BENCHMARKS.values())

    def test_paper_table4_test_benchmarks_present(self):
        abbreviations = {CPU_BENCHMARKS[n].abbreviation for n in CPU_TEST}
        assert abbreviations == {"FA", "fmm", "Rad", "x264"}
        abbreviations = {GPU_BENCHMARKS[n].abbreviation for n in GPU_TEST}
        assert abbreviations == {"DCT", "Dwt", "QRS", "Reduc"}

    def test_get_benchmark(self):
        assert get_benchmark("fluidanimate").abbreviation == "FA"
        assert get_benchmark("dct").core_type is CoreType.GPU
        with pytest.raises(KeyError):
            get_benchmark("nonexistent")

    def test_get_benchmark_error_lists_available_names(self):
        """The KeyError enumerates every valid name a caller could
        have meant — CPU, GPU and the collective family."""
        with pytest.raises(KeyError) as excinfo:
            get_benchmark("allreduce_ring")
        message = str(excinfo.value)
        assert "fluidanimate" in message
        assert "dct" in message
        assert "collective:" in message
        assert "allreduce_ring" in message


class TestSplits:
    def test_paper_split_sizes(self):
        assert len(CPU_TRAIN) == 6 and len(GPU_TRAIN) == 6
        assert len(CPU_VALIDATION) == 2 and len(GPU_VALIDATION) == 2
        assert len(CPU_TEST) == 4 and len(GPU_TEST) == 4

    def test_splits_disjoint_and_complete(self):
        cpu_all = set(CPU_TRAIN) | set(CPU_VALIDATION) | set(CPU_TEST)
        assert cpu_all == set(CPU_BENCHMARKS)
        assert len(CPU_TRAIN) + len(CPU_VALIDATION) + len(CPU_TEST) == 12
        gpu_all = set(GPU_TRAIN) | set(GPU_VALIDATION) | set(GPU_TEST)
        assert gpu_all == set(GPU_BENCHMARKS)

    def test_pair_counts_match_paper(self):
        assert len(training_pairs()) == 36
        assert len(validation_pairs()) == 4
        assert len(paper_test_pairs()) == 16

    def test_pairs_are_cpu_gpu(self):
        for cpu, gpu in paper_test_pairs():
            assert cpu.core_type is CoreType.CPU
            assert gpu.core_type is CoreType.GPU

    def test_pair_name(self):
        cpu, gpu = paper_test_pairs()[0]
        assert pair_name(cpu, gpu) == f"{cpu.abbreviation}+{gpu.abbreviation}"


class TestProfileValidation:
    def test_phases_sum_to_one(self):
        for profile in list(CPU_BENCHMARKS.values()) + list(
            GPU_BENCHMARKS.values()
        ):
            assert sum(p.fraction for p in profile.phases) == pytest.approx(1.0)

    def test_invalid_phase_fraction(self):
        with pytest.raises(ValueError):
            Phase(fraction=0.0, rate_multiplier=1.0)

    def test_invalid_phase_sum_rejected(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(
                name="bad",
                abbreviation="B",
                core_type=CoreType.CPU,
                injection_rate=0.1,
                local_fraction=0.5,
                l3_fraction=0.5,
                l3_miss_rate=0.1,
                read_fraction=0.5,
                phases=(Phase(0.5, 1.0),),
            )

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(
                name="bad",
                abbreviation="B",
                core_type=CoreType.CPU,
                injection_rate=-0.1,
                local_fraction=0.5,
                l3_fraction=0.5,
                l3_miss_rate=0.1,
                read_fraction=0.5,
            )

    def test_burst_intensity_below_one_rejected(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(
                name="bad",
                abbreviation="B",
                core_type=CoreType.GPU,
                injection_rate=0.1,
                local_fraction=0.5,
                l3_fraction=0.5,
                l3_miss_rate=0.1,
                read_fraction=0.5,
                burst_intensity=0.5,
            )

    def test_fraction_range_enforced(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(
                name="bad",
                abbreviation="B",
                core_type=CoreType.CPU,
                injection_rate=0.1,
                local_fraction=1.5,
                l3_fraction=0.5,
                l3_miss_rate=0.1,
                read_fraction=0.5,
            )
