"""Tests for repro.traffic.trace."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.packet import CacheLevel, CoreType, PacketClass
from repro.traffic.trace import InjectionEvent, Trace, TraceCursor


def _event(cycle=0, source=0, destination=16, core=CoreType.CPU, flits=1):
    level = (
        CacheLevel.CPU_L2_DOWN if core is CoreType.CPU else CacheLevel.GPU_L2_DOWN
    )
    return InjectionEvent(
        cycle=cycle,
        source=source,
        destination=destination,
        core_type=core,
        packet_class=PacketClass.REQUEST,
        cache_level=level,
        size_flits=flits,
    )


class TestInjectionEvent:
    def test_to_packet_copies_fields(self):
        event = _event(cycle=7, source=3, destination=16, flits=2)
        packet = event.to_packet()
        assert packet.source == 3
        assert packet.destination == 16
        assert packet.created_cycle == 7
        assert packet.size_flits == 2

    def test_negative_cycle_rejected(self):
        with pytest.raises(ValueError):
            _event(cycle=-1)

    def test_zero_flits_rejected(self):
        with pytest.raises(ValueError):
            _event(flits=0)


class TestTrace:
    def test_sorts_by_cycle(self):
        trace = Trace([_event(cycle=5), _event(cycle=1), _event(cycle=3)])
        assert [e.cycle for e in trace] == [1, 3, 5]

    def test_duration(self):
        trace = Trace([_event(cycle=5), _event(cycle=9)])
        assert trace.duration == 9

    def test_empty_duration(self):
        assert Trace([]).duration == 0

    def test_packets_by_core_type(self):
        trace = Trace(
            [_event(core=CoreType.CPU), _event(core=CoreType.GPU), _event()]
        )
        counts = trace.packets_by_core_type()
        assert counts[CoreType.CPU] == 2
        assert counts[CoreType.GPU] == 1

    def test_merge_interleaves(self):
        a = Trace([_event(cycle=0), _event(cycle=10)])
        b = Trace([_event(cycle=5, core=CoreType.GPU)])
        merged = Trace.merge([a, b])
        assert [e.cycle for e in merged] == [0, 5, 10]
        assert len(merged) == 3

    def test_save_load_round_trip(self, tmp_path):
        trace = Trace(
            [_event(cycle=1), _event(cycle=2, core=CoreType.GPU, flits=5)],
            name="round-trip",
        )
        path = tmp_path / "trace.txt"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.name == "round-trip"
        assert len(loaded) == 2
        assert loaded.events == trace.events

    @given(
        cycles=st.lists(
            st.integers(min_value=0, max_value=10_000), min_size=0, max_size=50
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_trace_always_sorted(self, cycles):
        trace = Trace([_event(cycle=c) for c in cycles])
        ordered = [e.cycle for e in trace]
        assert ordered == sorted(ordered)


class TestTraceCursor:
    def test_pops_in_order_exactly_once(self):
        trace = Trace([_event(cycle=c) for c in (0, 0, 3, 5)])
        cursor = TraceCursor(trace)
        assert len(cursor.pop_ready(0)) == 2
        assert cursor.pop_ready(2) == []
        assert len(cursor.pop_ready(4)) == 1
        assert len(cursor.pop_ready(100)) == 1
        assert cursor.exhausted

    def test_large_jump_pops_everything(self):
        trace = Trace([_event(cycle=c) for c in range(10)])
        cursor = TraceCursor(trace)
        assert len(cursor.pop_ready(9)) == 10

    def test_empty_trace_exhausted_immediately(self):
        assert TraceCursor(Trace([])).exhausted

    def test_next_cycle_tracks_head(self):
        trace = Trace([_event(cycle=c) for c in (2, 2, 7)])
        cursor = TraceCursor(trace)
        assert cursor.next_cycle() == 2
        cursor.pop_ready(2)
        assert cursor.next_cycle() == 7
        cursor.pop_ready(7)
        assert cursor.next_cycle() is None
        assert cursor.exhausted

    def test_horizon_edge_no_skip_no_double_pop(self):
        """Jumping exactly to an event's cycle pops it exactly once.

        The fast engine's horizon lands precisely on the next event's
        cycle; popping at that edge must deliver every event of that
        cycle once, and a re-pop at the same cycle must return nothing.
        """
        trace = Trace([_event(cycle=c) for c in (5, 5, 5, 9)])
        cursor = TraceCursor(trace)
        assert cursor.pop_ready(4) == []
        at_edge = cursor.pop_ready(5)
        assert [e.cycle for e in at_edge] == [5, 5, 5]
        assert cursor.pop_ready(5) == []
        assert cursor.next_cycle() == 9
        assert cursor.pop_ready(8) == []
        assert len(cursor.pop_ready(9)) == 1
        assert cursor.exhausted

    def test_jump_equals_stepping(self):
        """Cycle-by-cycle popping and horizon jumps yield identical events."""
        cycles = [0, 0, 3, 3, 3, 4, 10, 17, 17, 30]
        stepped = TraceCursor(Trace([_event(cycle=c) for c in cycles]))
        jumped = TraceCursor(Trace([_event(cycle=c) for c in cycles]))
        step_order = []
        for cycle in range(31):
            step_order.extend(e.cycle for e in stepped.pop_ready(cycle))
        jump_order = []
        cycle = 0
        while not jumped.exhausted:
            cycle = jumped.next_cycle()
            jump_order.extend(e.cycle for e in jumped.pop_ready(cycle))
        assert step_order == jump_order == sorted(cycles)
        assert stepped.exhausted and jumped.exhausted

    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_pop_partitions_events(self, cycles):
        """Any pop sequence partitions the trace: no skips, no repeats."""
        trace = Trace([_event(cycle=c) for c in cycles])
        cursor = TraceCursor(trace)
        seen = []
        cycle = -1
        while not cursor.exhausted:
            cycle = cursor.next_cycle()
            popped = cursor.pop_ready(cycle)
            assert popped, "pop at next_cycle() must return events"
            seen.extend(e.cycle for e in popped)
        assert seen == sorted(cycles)
