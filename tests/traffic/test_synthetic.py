"""Tests for repro.traffic.synthetic — deterministic trace generation."""

import pytest

from repro.config import ArchitectureConfig
from repro.noc.packet import CacheLevel, CoreType, PacketClass
from repro.traffic.benchmarks import CPU_BENCHMARKS, GPU_BENCHMARKS
from repro.traffic.synthetic import (
    generate_pair_trace,
    generate_trace,
    hotspot_trace,
    uniform_random_trace,
)

FA = CPU_BENCHMARKS["fluidanimate"]
DCT = GPU_BENCHMARKS["dct"]
ARCH = ArchitectureConfig()


class TestGenerateTrace:
    def test_deterministic_for_same_seed(self):
        a = generate_trace(FA, ARCH, duration=2_000, seed=5)
        b = generate_trace(FA, ARCH, duration=2_000, seed=5)
        assert a.events == b.events

    def test_different_seeds_differ(self):
        a = generate_trace(FA, ARCH, duration=2_000, seed=5)
        b = generate_trace(FA, ARCH, duration=2_000, seed=6)
        assert a.events != b.events

    def test_events_within_duration(self):
        trace = generate_trace(FA, ARCH, duration=1_000, seed=1)
        assert all(0 <= e.cycle < 1_000 for e in trace)

    def test_all_clusters_inject(self):
        trace = generate_trace(FA, ARCH, duration=5_000, seed=1)
        sources = {e.source for e in trace}
        assert sources == set(range(16))

    def test_only_requests_generated(self):
        """Responses are closed-loop; traces carry requests only."""
        trace = generate_trace(FA, ARCH, duration=2_000, seed=1)
        assert all(e.packet_class is PacketClass.REQUEST for e in trace)

    def test_core_type_matches_profile(self):
        trace = generate_trace(DCT, ARCH, duration=2_000, seed=1)
        assert all(e.core_type is CoreType.GPU for e in trace)

    def test_mean_rate_approximates_profile(self):
        """The time-average injection rate tracks injection_rate."""
        duration = 40_000
        trace = generate_trace(FA, ARCH, duration=duration, seed=2)
        per_cluster = len(trace) / (duration * ARCH.num_clusters)
        assert per_cluster == pytest.approx(FA.injection_rate, rel=0.15)

    def test_bursty_rate_normalised(self):
        """Burst modulation must not inflate the mean rate."""
        duration = 40_000
        trace = generate_trace(DCT, ARCH, duration=duration, seed=2)
        per_cluster = len(trace) / (duration * ARCH.num_clusters)
        assert per_cluster == pytest.approx(DCT.injection_rate, rel=0.25)

    def test_local_events_use_l1_levels(self):
        trace = generate_trace(FA, ARCH, duration=5_000, seed=1)
        for event in trace:
            if event.source == event.destination:
                assert event.cache_level in (
                    CacheLevel.CPU_L1_INSTR,
                    CacheLevel.CPU_L1_DATA,
                )
            else:
                assert event.cache_level is CacheLevel.CPU_L2_DOWN

    def test_network_events_target_l3_or_peers(self):
        trace = generate_trace(DCT, ARCH, duration=5_000, seed=1)
        for event in trace:
            assert 0 <= event.destination <= ARCH.l3_router_id

    def test_l3_fraction_respected(self):
        trace = generate_trace(FA, ARCH, duration=40_000, seed=3)
        network = [e for e in trace if e.source != e.destination]
        to_l3 = sum(1 for e in network if e.destination == ARCH.l3_router_id)
        assert to_l3 / len(network) == pytest.approx(FA.l3_fraction, abs=0.05)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            generate_trace(FA, ARCH, duration=0)


class TestPairTrace:
    def test_merges_both_types(self):
        trace = generate_pair_trace(FA, DCT, ARCH, duration=3_000, seed=1)
        counts = trace.packets_by_core_type()
        assert counts[CoreType.CPU] > 0
        assert counts[CoreType.GPU] > 0

    def test_rejects_swapped_arguments(self):
        with pytest.raises(ValueError):
            generate_pair_trace(DCT, FA, ARCH, duration=1_000)

    def test_name_uses_abbreviations(self):
        trace = generate_pair_trace(FA, DCT, ARCH, duration=1_000, seed=1)
        assert trace.name == "FA+DCT"


class TestUniformRandom:
    def test_rate_zero_is_empty(self):
        assert len(uniform_random_trace(rate=0.0, duration=1_000)) == 0

    def test_rate_bounds_enforced(self):
        with pytest.raises(ValueError):
            uniform_random_trace(rate=1.5)

    def test_no_self_destinations(self):
        trace = uniform_random_trace(rate=0.1, duration=2_000, seed=4)
        assert all(e.source != e.destination for e in trace)


class TestHotspot:
    def test_hotspot_receives_majority(self):
        trace = hotspot_trace(
            hotspot_router=0, rate=0.1, hotspot_fraction=0.8, duration=5_000
        )
        to_hotspot = sum(1 for e in trace if e.destination == 0)
        assert to_hotspot / len(trace) == pytest.approx(0.8, abs=0.05)

    def test_hotspot_never_injects(self):
        trace = hotspot_trace(hotspot_router=3, rate=0.1, duration=2_000)
        assert all(e.source != 3 for e in trace)

    def test_invalid_hotspot_rejected(self):
        with pytest.raises(ValueError):
            hotspot_trace(hotspot_router=99)
