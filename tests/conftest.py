"""Shared fixtures: tiny configurations that keep the suite fast."""

from __future__ import annotations

import pytest

from repro.config import (
    MLConfig,
    PearlConfig,
    PowerScalingConfig,
    SimulationConfig,
)
from repro.ml.pipeline import PowerModelTrainer
from repro.traffic.benchmarks import CPU_BENCHMARKS, GPU_BENCHMARKS
from repro.traffic.synthetic import generate_pair_trace


@pytest.fixture
def tiny_config() -> PearlConfig:
    """A PEARL config sized for sub-second simulation runs."""
    return PearlConfig(
        simulation=SimulationConfig(warmup_cycles=100, measure_cycles=1_500),
        power_scaling=PowerScalingConfig(reservation_window=200),
        ml=MLConfig(reservation_window=200),
    )


@pytest.fixture
def tiny_trace(tiny_config):
    """A short FA+DCT trace matched to ``tiny_config``."""
    return generate_pair_trace(
        CPU_BENCHMARKS["fluidanimate"],
        GPU_BENCHMARKS["dct"],
        tiny_config.architecture,
        tiny_config.simulation.total_cycles,
        seed=7,
    )


@pytest.fixture(scope="session")
def tiny_trained_model():
    """A ridge model trained through the real two-phase pipeline.

    Session-scoped because collection runs the simulator; two training
    pairs and one validation pair at short cycle counts keep it to a
    few seconds while exercising every pipeline stage.
    """
    config = PearlConfig(
        simulation=SimulationConfig(warmup_cycles=100, measure_cycles=2_000),
        power_scaling=PowerScalingConfig(reservation_window=200),
        ml=MLConfig(reservation_window=200),
    )
    train = [
        (CPU_BENCHMARKS["blackscholes"], GPU_BENCHMARKS["binary_search"]),
        (CPU_BENCHMARKS["canneal"], GPU_BENCHMARKS["matrix_mult"]),
    ]
    val = [(CPU_BENCHMARKS["raytrace"], GPU_BENCHMARKS["prefix_sum"])]
    trainer = PowerModelTrainer(
        config=config, train_pairs=train, val_pairs=val, seed=11
    )
    return trainer.train()
