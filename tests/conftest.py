"""Shared fixtures and test-matrix enforcement.

Fixtures are tiny configurations that keep the suite fast.  The
collection hook below enforces the marker contract of the test matrix
(see ``pyproject.toml`` and ``docs/ml_lifecycle.md#test-matrix``):

* tests that consume an expensive training fixture must be marked
  ``slow`` so the fast lane (``-m "not slow"``) actually is fast;
* tests under ``tests/golden/`` must be marked ``golden``;
* property-based tests get the ``hypothesis`` marker automatically.

Violations fail collection outright rather than silently bloating the
fast lane.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.config import (
    MLConfig,
    PearlConfig,
    PowerScalingConfig,
    SimulationConfig,
)
from repro.ml.pipeline import PowerModelTrainer
from repro.traffic.benchmarks import CPU_BENCHMARKS, GPU_BENCHMARKS
from repro.traffic.synthetic import generate_pair_trace

#: Fixtures whose construction runs a real training pipeline; any test
#: requesting one must be marked ``slow``.
SLOW_FIXTURES = frozenset({"tiny_trained_model", "tiny_trainer"})


def pytest_collection_modifyitems(config, items):
    del config  # unused; hook signature is fixed
    violations = []
    for item in items:
        obj = getattr(item, "obj", None)
        if obj is not None and hasattr(obj, "hypothesis"):
            item.add_marker(pytest.mark.hypothesis)
        fixtures = set(getattr(item, "fixturenames", ()))
        slow_used = sorted(SLOW_FIXTURES & fixtures)
        if slow_used and item.get_closest_marker("slow") is None:
            violations.append(
                f"{item.nodeid} uses {', '.join(slow_used)} but is not "
                "marked @pytest.mark.slow"
            )
        path = Path(str(item.fspath))
        if "golden" in path.parts and item.get_closest_marker("golden") is None:
            violations.append(
                f"{item.nodeid} lives under tests/golden/ but is not "
                "marked @pytest.mark.golden"
            )
    if violations:
        raise pytest.UsageError(
            "test-matrix marker contract violated "
            "(see pyproject.toml markers):\n  " + "\n  ".join(violations)
        )


@pytest.fixture
def tiny_config() -> PearlConfig:
    """A PEARL config sized for sub-second simulation runs."""
    return PearlConfig(
        simulation=SimulationConfig(warmup_cycles=100, measure_cycles=1_500),
        power_scaling=PowerScalingConfig(reservation_window=200),
        ml=MLConfig(reservation_window=200),
    )


@pytest.fixture
def tiny_trace(tiny_config):
    """A short FA+DCT trace matched to ``tiny_config``."""
    return generate_pair_trace(
        CPU_BENCHMARKS["fluidanimate"],
        GPU_BENCHMARKS["dct"],
        tiny_config.architecture,
        tiny_config.simulation.total_cycles,
        seed=7,
    )


@pytest.fixture(scope="session")
def tiny_trained_model():
    """A ridge model trained through the real two-phase pipeline.

    Session-scoped because collection runs the simulator; two training
    pairs and one validation pair at short cycle counts keep it to a
    few seconds while exercising every pipeline stage.
    """
    config = PearlConfig(
        simulation=SimulationConfig(warmup_cycles=100, measure_cycles=2_000),
        power_scaling=PowerScalingConfig(reservation_window=200),
        ml=MLConfig(reservation_window=200),
    )
    train = [
        (CPU_BENCHMARKS["blackscholes"], GPU_BENCHMARKS["binary_search"]),
        (CPU_BENCHMARKS["canneal"], GPU_BENCHMARKS["matrix_mult"]),
    ]
    val = [(CPU_BENCHMARKS["raytrace"], GPU_BENCHMARKS["prefix_sum"])]
    trainer = PowerModelTrainer(
        config=config, train_pairs=train, val_pairs=val, seed=11
    )
    return trainer.train()
