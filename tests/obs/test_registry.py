"""Metrics registry: instrument semantics, snapshots, merging."""

import pytest

from repro.obs.registry import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_merge_adds(self):
        a, b = Counter("c"), Counter("c")
        a.inc(2)
        b.inc(3)
        a.merge(b.to_dict())
        assert a.value == 5

    def test_reset(self):
        counter = Counter("c")
        counter.inc(7)
        counter.reset()
        assert counter.value == 0


class TestGauge:
    def test_tracks_value_and_peak(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.set(2)
        assert gauge.value == 2
        assert gauge.peak == 5

    def test_peak_handles_negative_start(self):
        gauge = Gauge("g")
        gauge.set(-3)
        assert gauge.peak == -3
        gauge.set(-7)
        assert gauge.peak == -3

    def test_merge_takes_maxima(self):
        a, b = Gauge("g"), Gauge("g")
        a.set(1)
        b.set(9)
        b.set(4)
        a.merge(b.to_dict())
        assert a.value == 4
        assert a.peak == 9

    def test_merge_into_unobserved_adopts(self):
        a, b = Gauge("g"), Gauge("g")
        b.set(-2)
        a.merge(b.to_dict())
        assert a.value == -2
        assert a.peak == -2


class TestHistogram:
    def test_bucket_placement_and_overflow(self):
        hist = Histogram("h", buckets=[1.0, 10.0])
        for value in (0.5, 1.0, 5.0, 100.0):
            hist.observe(value)
        assert hist.counts == [2, 1, 1]
        assert hist.count == 4
        assert hist.sum == pytest.approx(106.5)

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=[])
        with pytest.raises(ValueError):
            Histogram("h", buckets=[2.0, 1.0])

    def test_mean(self):
        hist = Histogram("h", buckets=[10.0])
        assert hist.mean == 0.0
        hist.observe(2)
        hist.observe(4)
        assert hist.mean == pytest.approx(3.0)

    def test_quantiles_interpolate(self):
        hist = Histogram("h", buckets=[1.0, 2.0, 3.0, 4.0])
        for value in (0.5, 1.5, 2.5, 3.5):
            hist.observe(value)
        assert hist.quantile(0.0) == 0.0
        assert 0.0 < hist.quantile(0.25) <= 1.0
        assert 2.0 < hist.quantile(0.75) <= 3.0
        assert hist.quantile(1.0) == pytest.approx(4.0)

    def test_quantile_monotone(self):
        hist = Histogram("h")
        for value in (0.02, 0.3, 0.7, 5.0, 40.0, 2000.0):
            hist.observe(value)
        qs = [hist.quantile(q / 10) for q in range(11)]
        assert qs == sorted(qs)

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram("h").quantile(1.5)

    def test_merge_requires_equal_bounds(self):
        a = Histogram("h", buckets=[1.0])
        b = Histogram("h", buckets=[2.0])
        with pytest.raises(ValueError):
            a.merge(b.to_dict())

    def test_merge_adds(self):
        a = Histogram("h", buckets=[1.0, 2.0])
        b = Histogram("h", buckets=[1.0, 2.0])
        a.observe(0.5)
        b.observe(1.5)
        b.observe(9.0)
        a.merge(b.to_dict())
        assert a.counts == [1, 1, 1]
        assert a.count == 3


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_names_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.gauge("a")
        assert registry.names() == ["a", "b"]

    def test_snapshot_excludes_volatile_on_request(self):
        registry = MetricsRegistry()
        registry.counter("keep").inc()
        registry.histogram("wall", volatile=True).observe(1.0)
        assert set(registry.snapshot()) == {"keep", "wall"}
        assert set(registry.snapshot(include_volatile=False)) == {"keep"}

    def test_merge_snapshot_order_independent(self):
        def worker(values):
            registry = MetricsRegistry()
            for value in values:
                registry.counter("c").inc(value)
                registry.gauge("g").set(value)
                registry.histogram("h").observe(value)
            return registry.snapshot()

        snaps = [worker([1, 2]), worker([5]), worker([0.5, 3])]

        def merged(order):
            registry = MetricsRegistry()
            for index in order:
                registry.merge_snapshot(snaps[index])
            return registry.snapshot()

        assert merged([0, 1, 2]) == merged([2, 0, 1]) == merged([1, 2, 0])

    def test_merge_preserves_volatile_flag(self):
        source = MetricsRegistry()
        source.histogram("wall", volatile=True).observe(1.0)
        target = MetricsRegistry()
        target.merge_snapshot(source.snapshot())
        assert set(target.snapshot(include_volatile=False)) == set()

    def test_merge_rejects_unknown_kind(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.merge_snapshot({"x": {"kind": "mystery"}})

    def test_reset_keeps_names(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.reset()
        assert registry.names() == ["c"]
        assert registry.counter("c").value == 0

    def test_clear_drops_names(self):
        registry = MetricsRegistry()
        registry.counter("c")
        registry.clear()
        assert registry.names() == []

    def test_default_buckets_ascending(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
