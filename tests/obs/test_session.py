"""Session lifecycle: enable/disable, capture isolation, merging."""

import pytest

from repro import obs
from repro.obs import OBS


@pytest.fixture(autouse=True)
def _telemetry_off():
    """Every test starts and ends with telemetry disabled."""
    obs.disable()
    yield
    obs.disable()


class TestLifecycle:
    def test_disabled_by_default(self):
        assert not OBS.enabled

    def test_enable_creates_fresh_instruments(self):
        obs.enable()
        OBS.registry.counter("x").inc()
        obs.enable()
        assert OBS.registry.names() == []

    def test_session_restores_prior_state(self):
        with obs.session():
            assert OBS.enabled
            OBS.registry.counter("inner").inc()
        assert not OBS.enabled

    def test_nested_sessions_restore_outer_instruments(self):
        with obs.session():
            OBS.registry.counter("outer").inc(5)
            with obs.session():
                OBS.registry.counter("inner").inc()
            assert OBS.registry.names() == ["outer"]
            assert OBS.registry.counter("outer").value == 5

    def test_session_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with obs.session():
                raise RuntimeError("boom")
        assert not OBS.enabled

    def test_session_passes_sampling_knob(self):
        with obs.session(sample_every=5):
            assert OBS.tracer.sample_every == 5

    def test_config_roundtrip_through_apply(self):
        with obs.session(
            sample_every=3, capacity=128, series_every=4, series_capacity=99
        ):
            config = OBS.config()
        obs.apply_config(config)
        try:
            assert OBS.enabled
            assert OBS.sample_every == 3
            assert OBS.tracer.capacity == 128
            assert OBS.series.series_every == 4
            assert OBS.series.capacity == 99
        finally:
            obs.disable()

    def test_session_disables_series_with_zero_cadence(self):
        with obs.session(series_every=0):
            assert not OBS.series.enabled
            OBS.series.record(
                500,
                0,
                injected=1.0,
                predicted=float("nan"),
                occ_cpu=0.0,
                occ_gpu=0.0,
                ej_cpu=0.0,
                ej_gpu=0.0,
                state_before=64,
                state_target=64,
                laser_power_w=1.16,
                dba_cpu=0.5,
                dba_gpu=0.5,
            )
            assert len(OBS.series) == 0

    def test_apply_disabled_config(self):
        obs.apply_config({"enabled": False})
        assert not OBS.enabled


class TestCapture:
    def test_requires_enabled_session(self):
        with pytest.raises(RuntimeError):
            with obs.capture():
                pass

    def test_isolates_and_restores(self):
        with obs.session():
            OBS.registry.counter("outer").inc()
            with obs.capture() as cap:
                OBS.registry.counter("job_metric").inc(2)
                OBS.tracer.instant("job_event", "cat", ts=1)
            assert OBS.registry.names() == ["outer"]
            snap = cap.take()
            assert snap["metrics"]["job_metric"]["value"] == 2
            assert len(snap["events"]) == 1

    def test_merge_capture_folds_into_session(self):
        with obs.session():
            with obs.capture() as cap:
                OBS.registry.counter("c").inc(3)
                OBS.tracer.instant("e", "cat", ts=1)
            obs.merge_capture(cap.take(), stream="job0")
            assert OBS.registry.counter("c").value == 3
            (event,) = OBS.tracer.events()
            assert event.stream == "job0"

    def test_capture_isolates_series_and_engines(self):
        with obs.session():
            with obs.capture() as cap:
                OBS.series.record(
                    500,
                    1,
                    injected=2.0,
                    predicted=float("nan"),
                    occ_cpu=0.1,
                    occ_gpu=0.1,
                    ej_cpu=0.0,
                    ej_gpu=0.0,
                    state_before=64,
                    state_target=48,
                    laser_power_w=0.871,
                    dba_cpu=0.5,
                    dba_gpu=0.5,
                )
                OBS.note_engine("array")
            assert len(OBS.series) == 0
            assert OBS.engines == {}
            snap = cap.take()
            assert snap["engines"] == {"array": 1}
            obs.merge_capture(snap, stream="job0")
            assert len(OBS.series) == 1
            assert OBS.series.arrays()["stream"][0] == "job0"
            assert OBS.engines == {"array": 1}

    def test_merge_capture_tolerates_none(self):
        with obs.session():
            obs.merge_capture(None, stream="job0")
            assert OBS.registry.names() == []

    def test_merge_capture_noop_when_disabled(self):
        obs.merge_capture({"metrics": {}, "events": []}, stream="job0")
        assert not OBS.enabled
