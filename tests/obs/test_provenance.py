"""Provenance collection: config digests, git info, run context."""

from repro import __version__
from repro.config import PearlConfig
from repro.obs.provenance import (
    collect_provenance,
    config_digest,
    git_provenance,
)


class TestConfigDigest:
    def test_none_config(self):
        assert config_digest(None) is None

    def test_stable_for_equal_configs(self):
        assert config_digest(PearlConfig()) == config_digest(PearlConfig())

    def test_changes_with_config(self):
        base = PearlConfig()
        changed = base.with_reservation_window(
            base.ml.reservation_window * 2
        )
        assert config_digest(base) != config_digest(changed)


class TestGitProvenance:
    def test_keys_present(self):
        info = git_provenance()
        assert set(info) == {"commit", "branch", "dirty"}


class TestCollect:
    def test_core_keys(self):
        block = collect_provenance(PearlConfig(), seed=11, experiment="fig9")
        assert block["repro_version"] == __version__
        assert block["seed"] == 11
        assert block["experiment"] == "fig9"
        assert block["config_digest"] is not None
        for key in ("python", "numpy", "platform", "timestamp", "git"):
            assert key in block

    def test_json_serialisable(self):
        import json

        json.dumps(collect_provenance(PearlConfig(), seed=1))
