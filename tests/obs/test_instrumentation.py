"""Component instrumentation sites and their determinism guarantee.

Telemetry must be strictly observational: a run with the session
enabled produces byte-identical simulation results to one without.
These tests drive real components (network, coherence controller,
reservation channel, ML scaler) and check both the emitted metrics and
that guarantee.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import obs
from repro.cache.cache import SetAssociativeCache
from repro.cache.coherence import (
    AccessType,
    Directory,
    NmoesiController,
)
from repro.config import PearlConfig, SimulationConfig
from repro.core.reservation import Reservation, ReservationChannel
from repro.noc.network import PearlNetwork, PearlRunResult
from repro.noc.router import PowerPolicyKind
from repro.obs import OBS
from repro.traffic.benchmarks import training_pairs
from repro.traffic.synthetic import generate_pair_trace


@pytest.fixture(autouse=True)
def _telemetry_off():
    obs.disable()
    yield
    obs.disable()


def _tiny_run(seed=7, engine="fast"):
    config = PearlConfig().replace(
        simulation=SimulationConfig(
            warmup_cycles=500, measure_cycles=3_000, seed=seed
        )
    )
    cpu, gpu = training_pairs()[0]
    trace = generate_pair_trace(
        cpu, gpu, config.architecture, config.simulation.total_cycles, seed
    )
    network = PearlNetwork(
        config, power_policy=PowerPolicyKind.REACTIVE, seed=seed
    )
    return network.run(trace, engine=engine)


def _canonical(result):
    data = {}
    for field in dataclasses.fields(PearlRunResult):
        value = getattr(result, field.name)
        data[field.name] = value.to_dict() if hasattr(value, "to_dict") else value
    return data


class TestNetworkInstrumentation:
    def test_window_and_laser_metrics_emitted(self):
        with obs.session():
            _tiny_run()
            snap = OBS.registry.snapshot()
        assert snap["noc/windows_closed"]["value"] > 0
        assert snap["sim/runs"]["value"] == 1
        assert snap["noc/buffer_occupancy/cpu"]["count"] > 0
        assert snap["noc/buffer_occupancy/gpu"]["count"] > 0
        assert sum(
            data["value"]
            for name, data in snap.items()
            if name.startswith("dba/split/")
        ) > 0
        assert sum(
            data["value"]
            for name, data in snap.items()
            if name.startswith("laser/state_cycles/")
        ) > 0

    def test_window_close_events_emitted(self):
        with obs.session():
            _tiny_run()
            names = {e.name for e in OBS.tracer.events(include_wall=False)}
            wall = [e for e in OBS.tracer.events() if e.wall]
        assert "window_close" in names
        assert {e.name for e in wall} >= {
            "sim/warmup",
            "sim/measure",
            "sim/integrate_energy",
        }

    def test_run_identical_with_telemetry_on_or_off(self):
        plain = _canonical(_tiny_run())
        with obs.session():
            instrumented = _canonical(_tiny_run())
        assert plain == instrumented

    def test_fast_engine_reports_same_sim_metrics(self):
        """An instrumented fast-engine run matches the reference run.

        Skipped-span accounting folds into the existing counters (DBA
        split tallies, link samples, laser state cycles) — no new
        metric names, no diverging values.  Wall-clock trace spans are
        excluded: only the simulated quantities must agree.
        """
        with obs.session():
            reference = _canonical(_tiny_run(engine="reference"))
            ref_metrics = OBS.registry.snapshot()
        with obs.session():
            fast = _canonical(_tiny_run(engine="fast"))
            fast_metrics = OBS.registry.snapshot()
        assert reference == fast
        assert sorted(ref_metrics) == sorted(fast_metrics)
        assert ref_metrics == fast_metrics

    def test_disabled_session_records_nothing(self):
        with obs.session():
            registry = OBS.registry
        _tiny_run()
        assert registry.names() == []


class TestComponentCounters:
    def test_reservation_broadcasts_counted(self):
        channel = ReservationChannel()
        with obs.session():
            channel.broadcast(
                Reservation(
                    source=0,
                    destination=1,
                    cpu_fraction=0.5,
                    gpu_fraction=0.5,
                    issue_cycle=0,
                )
            )
            assert (
                OBS.registry.counter("reservation/broadcasts").value == 1
            )

    def test_coherence_actions_counted(self):
        def drive():
            directory = Directory()
            peers = {}
            a = NmoesiController(
                0, SetAssociativeCache(size_bytes=4096, associativity=2), directory, peers
            )
            b = NmoesiController(
                1, SetAssociativeCache(size_bytes=4096, associativity=2), directory, peers
            )
            a.access(0x100, AccessType.LOAD)
            a.access(0x100, AccessType.LOAD)
            b.access(0x100, AccessType.STORE)

        with obs.session():
            drive()
            snap = OBS.registry.snapshot()
        assert snap["coherence/hit"]["value"] >= 1
        assert snap["coherence/fetch_from_memory"]["value"] >= 1
        assert any(name.startswith("coherence/") for name in snap)
