"""Window-series recorder: cadence, capacity, merge, save/load, summary."""

import numpy as np
import pytest

from repro import obs
from repro.obs import OBS
from repro.obs.series import (
    COLUMNS,
    DEFAULT_SERIES_CAPACITY,
    SERIES_SCHEMA,
    WindowSeriesRecorder,
    load_series,
    save_series,
    series_provenance,
    series_summary,
)


@pytest.fixture(autouse=True)
def _telemetry_off():
    obs.disable()
    yield
    obs.disable()


def _record(series, cycle=500, router=0, **overrides):
    kwargs = dict(
        injected=3.0,
        predicted=2.5,
        occ_cpu=0.25,
        occ_gpu=0.5,
        ej_cpu=0.1,
        ej_gpu=0.0,
        state_before=64,
        state_target=48,
        laser_power_w=0.871,
        dba_cpu=0.7,
        dba_gpu=0.3,
        drift_active=False,
        fallback=False,
        clamp_events=0,
        crc_errors=0,
        retransmissions=0,
    )
    kwargs.update(overrides)
    series.record(cycle, router, **kwargs)


class TestRecorder:
    def test_defaults(self):
        series = WindowSeriesRecorder()
        assert series.enabled
        assert series.series_every == 1
        assert series.capacity == DEFAULT_SERIES_CAPACITY
        assert len(series) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowSeriesRecorder(series_every=-1)
        with pytest.raises(ValueError):
            WindowSeriesRecorder(capacity=0)

    def test_zero_cadence_disables(self):
        series = WindowSeriesRecorder(series_every=0)
        assert not series.enabled
        _record(series)
        assert len(series) == 0

    def test_record_and_arrays(self):
        series = WindowSeriesRecorder()
        _record(series, cycle=500, router=3)
        _record(series, cycle=700, router=4, predicted=float("nan"))
        arrays = series.arrays()
        assert set(arrays) == set(COLUMNS) | {"stream"}
        assert arrays["cycle"].tolist() == [500, 700]
        assert arrays["router"].tolist() == [3, 4]
        assert arrays["cycle"].dtype == np.int64
        assert arrays["occ_cpu"].dtype == np.float64
        assert np.isnan(arrays["predicted"][1])
        assert arrays["stream"].tolist() == ["main", "main"]

    def test_cadence_is_per_router(self):
        series = WindowSeriesRecorder(series_every=2)
        for cycle in (500, 1000, 1500, 2000):
            _record(series, cycle=cycle, router=0)
            _record(series, cycle=cycle, router=1)
        arrays = series.arrays()
        # Each router keeps its own 1st and 3rd closes.
        assert arrays["cycle"].tolist() == [500, 500, 1500, 1500]
        assert arrays["router"].tolist() == [0, 1, 0, 1]
        assert series.dropped == 0  # cadence skips are not drops

    def test_capacity_keeps_head_and_counts_drops(self):
        series = WindowSeriesRecorder(capacity=3)
        for cycle in (500, 1000, 1500, 2000, 2500):
            _record(series, cycle=cycle)
        assert len(series) == 3
        assert series.dropped == 2
        assert series.arrays()["cycle"].tolist() == [500, 1000, 1500]


class TestMerge:
    def test_merge_retags_stream_in_order(self):
        parent = WindowSeriesRecorder()
        worker = WindowSeriesRecorder()
        _record(worker, cycle=500)
        _record(worker, cycle=1000)
        _record(parent, cycle=700)
        parent.merge_snapshot(worker.snapshot(), stream="job1")
        arrays = parent.arrays()
        assert arrays["cycle"].tolist() == [700, 500, 1000]
        assert arrays["stream"].tolist() == ["main", "job1", "job1"]

    def test_merge_respects_capacity_and_carries_drops(self):
        parent = WindowSeriesRecorder(capacity=2)
        worker = WindowSeriesRecorder(capacity=2)
        for cycle in (500, 1000, 1500):
            _record(worker, cycle=cycle)
        assert worker.dropped == 1
        _record(parent, cycle=700)
        parent.merge_snapshot(worker.snapshot(), stream="job0")
        assert len(parent) == 2
        # worker's own drop + one worker row past the parent cap
        assert parent.dropped == 2

    def test_merge_none_is_noop(self):
        parent = WindowSeriesRecorder()
        parent.merge_snapshot(None, stream="job0")
        assert len(parent) == 0


class TestSaveLoad:
    def test_roundtrip_with_provenance(self, tmp_path):
        series = WindowSeriesRecorder(series_every=2)
        _record(series, cycle=500)
        path = save_series(
            tmp_path / "run.series.npz", series, provenance={"seed": 7}
        )
        arrays = load_series(path)
        assert str(arrays["schema"]) == SERIES_SCHEMA
        assert int(arrays["series_every"]) == 2
        assert arrays["cycle"].tolist() == [500]
        assert series_provenance(arrays) == {"seed": 7}

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, schema=np.asarray("pearl-series-0"))
        with pytest.raises(ValueError, match="schema"):
            load_series(path)

    def test_load_rejects_missing_column(self, tmp_path):
        series = WindowSeriesRecorder()
        _record(series)
        payload = series.arrays()
        payload.pop("dba_gpu")
        payload["schema"] = np.asarray(SERIES_SCHEMA)
        path = tmp_path / "bad.npz"
        np.savez(path, **payload)
        with pytest.raises(ValueError, match="dba_gpu"):
            load_series(path)

    def test_load_rejects_ragged_columns(self, tmp_path):
        series = WindowSeriesRecorder()
        _record(series)
        _record(series, cycle=1000)
        payload = series.arrays()
        payload["cycle"] = payload["cycle"][:1]
        payload["schema"] = np.asarray(SERIES_SCHEMA)
        path = tmp_path / "bad.npz"
        np.savez(path, **payload)
        with pytest.raises(ValueError, match="ragged"):
            load_series(path)


class TestSummary:
    def test_empty(self):
        doc = series_summary(WindowSeriesRecorder().arrays())
        assert doc["rows"] == 0
        assert doc["per_router"] == []
        assert doc["prediction"] is None

    def test_aggregates(self):
        series = WindowSeriesRecorder()
        _record(series, cycle=500, router=0, predicted=4.0, injected=3.0)
        _record(series, cycle=1000, router=0, predicted=2.0, injected=3.0)
        _record(
            series,
            cycle=500,
            router=1,
            predicted=float("nan"),
            state_target=64,
            laser_power_w=1.16,
            drift_active=True,
            fallback=True,
            crc_errors=5,
            retransmissions=2,
        )
        doc = series_summary(series.arrays())
        assert doc["rows"] == 3
        assert doc["routers"] == 2
        assert doc["cycle_range"] == [500, 1000]
        assert doc["drift_windows"] == 1
        assert doc["fallback_windows"] == 1
        assert doc["faults"]["crc_errors"] == 5
        assert doc["faults"]["retransmissions"] == 2
        prediction = doc["prediction"]
        assert prediction["windows"] == 2  # NaN rows excluded
        assert prediction["mae"] == 1.0
        assert prediction["bias"] == 0.0
        by_router = {row["router"]: row for row in doc["per_router"]}
        assert by_router[0]["windows"] == 2
        assert by_router[0]["prediction_mae"] == 1.0
        assert by_router[1]["prediction_mae"] is None
        duty = {row["state"]: row for row in doc["laser_duty"]}
        assert duty[48]["windows"] == 2
        assert duty[64]["duty"] == pytest.approx(1 / 3)


class TestSessionWiring:
    def test_session_carries_series_knobs(self):
        with obs.session(series_every=3, series_capacity=10):
            assert OBS.series.series_every == 3
            assert OBS.series.capacity == 10
        # restored to the (disabled) outer state
        assert not OBS.enabled
