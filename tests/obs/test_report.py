"""Report rendering: summary rows, wall phases, text/JSON output."""

import json

from repro.obs.registry import MetricsRegistry
from repro.obs.report import (
    metrics_rows,
    render_report,
    render_series_report,
    report_doc,
    wall_phase_rows,
)
from repro.obs.series import WindowSeriesRecorder
from repro.obs.tracer import EventTracer


def _populated():
    registry = MetricsRegistry()
    registry.counter("noc/windows").inc(7)
    registry.gauge("noc/backlog").set(3)
    registry.histogram("ml/error").observe(0.2)
    tracer = EventTracer()
    tracer.instant("window_close", "noc", ts=500)
    with tracer.wall_span("sim/measure", "sim"):
        pass
    return registry, tracer


class TestRows:
    def test_one_row_per_instrument(self):
        registry, _ = _populated()
        rows = metrics_rows(registry)
        assert [r["name"] for r in rows] == [
            "ml/error",
            "noc/backlog",
            "noc/windows",
        ]
        by_name = {r["name"]: r for r in rows}
        assert by_name["noc/windows"]["value"] == 7
        assert by_name["noc/backlog"]["peak"] == 3
        assert by_name["ml/error"]["count"] == 1
        assert "p95" in by_name["ml/error"]

    def test_wall_phases_sorted_longest_first(self):
        tracer = EventTracer()
        import time

        with tracer.wall_span("short", "sim"):
            pass
        with tracer.wall_span("long", "sim"):
            time.sleep(0.01)
        rows = wall_phase_rows(tracer)
        assert [r["name"] for r in rows] == ["long", "short"]

    def test_wall_phases_exclude_sim_events(self):
        _, tracer = _populated()
        rows = wall_phase_rows(tracer)
        assert [r["name"] for r in rows] == ["sim/measure"]


class TestDoc:
    def test_keys_and_serialisable(self):
        registry, tracer = _populated()
        doc = report_doc(registry, tracer, {"seed": 1})
        assert set(doc) == {
            "provenance",
            "engines",
            "metrics",
            "wall_phases",
            "trace_events",
            "trace_dropped",
            "trace_dropped_sampling",
            "trace_dropped_overflow",
            "series",
        }
        assert doc["trace_events"] == 2
        assert doc["series"] is None  # nothing recorded
        json.dumps(doc)

    def test_drop_split_and_engines(self):
        registry, tracer = _populated()
        series = WindowSeriesRecorder()
        series.record(
            500,
            0,
            injected=3.0,
            predicted=float("nan"),
            occ_cpu=0.1,
            occ_gpu=0.2,
            ej_cpu=0.0,
            ej_gpu=0.0,
            state_before=64,
            state_target=48,
            laser_power_w=0.871,
            dba_cpu=0.7,
            dba_gpu=0.3,
        )
        doc = report_doc(
            registry,
            tracer,
            series=series,
            engines={"array": 2, "fast": 1},
        )
        assert doc["engines"] == {"array": 2, "fast": 1}
        assert (
            doc["trace_dropped"]
            == doc["trace_dropped_sampling"] + doc["trace_dropped_overflow"]
        )
        assert doc["series"]["rows"] == 1
        assert doc["series"]["routers"] == 1
        json.dumps(doc)


class TestRender:
    def test_sections_present(self):
        registry, tracer = _populated()
        text = render_report(registry, tracer, {"seed": 1})
        assert "# provenance" in text
        assert "seed: 1" in text
        assert "# metrics (3)" in text
        assert "noc/windows" in text
        assert "# wall-clock phases" in text
        assert "sim/measure" in text
        assert "buffered events" in text

    def test_empty_session_renders(self):
        text = render_report(MetricsRegistry(), EventTracer())
        assert "(none)" in text

    def test_engines_and_series_sections(self):
        registry, tracer = _populated()
        series = WindowSeriesRecorder()
        series.record(
            500,
            4,
            injected=2.0,
            predicted=2.5,
            occ_cpu=0.1,
            occ_gpu=0.2,
            ej_cpu=0.0,
            ej_gpu=0.0,
            state_before=64,
            state_target=64,
            laser_power_w=1.16,
            dba_cpu=0.5,
            dba_gpu=0.5,
        )
        text = render_report(
            registry, tracer, series=series, engines={"array": 1}
        )
        assert "# engines" in text
        assert "array: 1 run(s)" in text
        assert "# window series: 1 records over 1 routers" in text
        assert "dropped by sampling" in text

    def test_series_report_renders(self):
        series = WindowSeriesRecorder()
        for cycle, predicted in ((500, 2.5), (1000, 3.5)):
            series.record(
                cycle,
                4,
                injected=3.0,
                predicted=predicted,
                occ_cpu=0.1,
                occ_gpu=0.2,
                ej_cpu=0.0,
                ej_gpu=0.0,
                state_before=64,
                state_target=48,
                laser_power_w=0.871,
                dba_cpu=0.7,
                dba_gpu=0.3,
            )
        from repro.obs.series import series_summary

        doc = series_summary(series.arrays())
        text = render_series_report(doc)
        assert "# per-router" in text
        assert "# prediction error" in text
        assert "# laser duty" in text
        assert "cycles: 500 .. 1000" in text
