"""Report rendering: summary rows, wall phases, text/JSON output."""

import json

from repro.obs.registry import MetricsRegistry
from repro.obs.report import (
    metrics_rows,
    render_report,
    report_doc,
    wall_phase_rows,
)
from repro.obs.tracer import EventTracer


def _populated():
    registry = MetricsRegistry()
    registry.counter("noc/windows").inc(7)
    registry.gauge("noc/backlog").set(3)
    registry.histogram("ml/error").observe(0.2)
    tracer = EventTracer()
    tracer.instant("window_close", "noc", ts=500)
    with tracer.wall_span("sim/measure", "sim"):
        pass
    return registry, tracer


class TestRows:
    def test_one_row_per_instrument(self):
        registry, _ = _populated()
        rows = metrics_rows(registry)
        assert [r["name"] for r in rows] == [
            "ml/error",
            "noc/backlog",
            "noc/windows",
        ]
        by_name = {r["name"]: r for r in rows}
        assert by_name["noc/windows"]["value"] == 7
        assert by_name["noc/backlog"]["peak"] == 3
        assert by_name["ml/error"]["count"] == 1
        assert "p95" in by_name["ml/error"]

    def test_wall_phases_sorted_longest_first(self):
        tracer = EventTracer()
        import time

        with tracer.wall_span("short", "sim"):
            pass
        with tracer.wall_span("long", "sim"):
            time.sleep(0.01)
        rows = wall_phase_rows(tracer)
        assert [r["name"] for r in rows] == ["long", "short"]

    def test_wall_phases_exclude_sim_events(self):
        _, tracer = _populated()
        rows = wall_phase_rows(tracer)
        assert [r["name"] for r in rows] == ["sim/measure"]


class TestDoc:
    def test_keys_and_serialisable(self):
        registry, tracer = _populated()
        doc = report_doc(registry, tracer, {"seed": 1})
        assert set(doc) == {
            "provenance",
            "metrics",
            "wall_phases",
            "trace_events",
            "trace_dropped",
        }
        assert doc["trace_events"] == 2
        json.dumps(doc)


class TestRender:
    def test_sections_present(self):
        registry, tracer = _populated()
        text = render_report(registry, tracer, {"seed": 1})
        assert "# provenance" in text
        assert "seed: 1" in text
        assert "# metrics (3)" in text
        assert "noc/windows" in text
        assert "# wall-clock phases" in text
        assert "sim/measure" in text
        assert "buffered events" in text

    def test_empty_session_renders(self):
        text = render_report(MetricsRegistry(), EventTracer())
        assert "(none)" in text
