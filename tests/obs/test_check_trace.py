"""scripts/check_trace.py validates what the exporters emit."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

import numpy as np

import repro.obs.series as series_mod
from repro.obs.export import write_trace_artifacts
from repro.obs.registry import MetricsRegistry
from repro.obs.series import WindowSeriesRecorder, save_series
from repro.obs.tracer import EventTracer

SCRIPT = (
    Path(__file__).resolve().parents[2] / "scripts" / "check_trace.py"
)


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location("check_trace", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture
def artifacts(tmp_path):
    registry = MetricsRegistry()
    registry.counter("noc/windows").inc(2)
    registry.gauge("noc/backlog").set(1)
    registry.histogram("ml/error").observe(0.1)
    tracer = EventTracer()
    tracer.instant("window_close", "noc", ts=500)
    with tracer.wall_span("sim/measure", "sim"):
        pass
    return write_trace_artifacts(
        tmp_path / "run", registry, tracer, {"seed": 1}
    )


def _series(tmp_path, name="run.series.npz"):
    series = WindowSeriesRecorder()
    series.record(
        500,
        0,
        injected=3.0,
        predicted=2.5,
        occ_cpu=0.25,
        occ_gpu=0.5,
        ej_cpu=0.1,
        ej_gpu=0.0,
        state_before=64,
        state_target=48,
        laser_power_w=0.871,
        dba_cpu=0.7,
        dba_gpu=0.3,
    )
    return save_series(tmp_path / name, series, provenance={"seed": 1})


class TestAcceptsRealArtifacts:
    def test_jsonl_valid(self, checker, artifacts):
        jsonl, _ = artifacts
        assert checker.check_jsonl(jsonl) == []

    def test_chrome_valid(self, checker, artifacts):
        _, chrome = artifacts
        assert checker.check_chrome(chrome) == []

    def test_series_valid(self, checker, tmp_path):
        path = _series(tmp_path)
        assert checker.check_series(path) == []

    def test_main_accepts_stem(self, checker, artifacts, capsys):
        jsonl, _ = artifacts
        stem = str(jsonl)[: -len(".jsonl")]
        assert checker.main([stem]) == 0

    def test_main_stem_includes_series(self, checker, artifacts, capsys):
        jsonl, _ = artifacts
        _series(jsonl.parent, name="run.series.npz")
        stem = str(jsonl)[: -len(".jsonl")]
        assert checker.main([stem]) == 0
        assert "3 artifact(s) valid" in capsys.readouterr().out

    def test_main_dispatches_npz_suffix(self, checker, tmp_path, capsys):
        path = _series(tmp_path)
        assert checker.main([str(path)]) == 0

    def test_series_columns_pinned_to_recorder(self, checker):
        """The stdlib duplicate of the column contract must not drift."""
        assert checker.SERIES_INT_COLUMNS == series_mod.INT_COLUMNS
        assert checker.SERIES_FLOAT_COLUMNS == series_mod.FLOAT_COLUMNS
        assert checker.EXPECTED_SERIES_SCHEMA == series_mod.SERIES_SCHEMA


class TestRejectsBrokenArtifacts:
    def test_missing_header(self, checker, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"type": "metric", "name": "x"}) + "\n")
        assert checker.check_jsonl(path)

    def test_wrong_schema(self, checker, artifacts):
        jsonl, _ = artifacts
        lines = jsonl.read_text().splitlines()
        header = json.loads(lines[0])
        header["schema"] = "pearl-obs-0"
        lines[0] = json.dumps(header)
        jsonl.write_text("\n".join(lines) + "\n")
        assert any("schema" in e for e in checker.check_jsonl(jsonl))

    def test_metric_missing_field(self, checker, tmp_path):
        path = tmp_path / "bad.jsonl"
        records = [
            {"type": "provenance", "schema": "pearl-obs-1", "provenance": {}},
            {"type": "metric", "name": "x", "kind": "histogram"},
        ]
        path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        errors = checker.check_jsonl(path)
        assert any("missing 'bounds'" in e for e in errors)

    def test_truncated_json_line(self, checker, artifacts):
        jsonl, _ = artifacts
        jsonl.write_text(jsonl.read_text() + "{ truncated\n")
        assert any("invalid JSON" in e for e in checker.check_jsonl(jsonl))

    def test_chrome_span_without_duration(self, checker, tmp_path):
        path = tmp_path / "bad.trace.json"
        path.write_text(
            json.dumps(
                {
                    "traceEvents": [
                        {
                            "ph": "X",
                            "name": "n",
                            "pid": 1,
                            "tid": 1,
                            "ts": 0,
                        }
                    ]
                }
            )
        )
        assert any("dur" in e for e in checker.check_chrome(path))

    def test_main_exit_code(self, checker, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        assert checker.main([str(path)]) == 1

    def test_series_wrong_schema(self, checker, tmp_path):
        path = tmp_path / "bad.series.npz"
        np.savez(path, schema=np.asarray("pearl-series-0"))
        assert any("schema" in e for e in checker.check_series(path))

    def test_series_missing_column(self, checker, tmp_path):
        path = _series(tmp_path)
        with np.load(path, allow_pickle=False) as data:
            payload = {name: data[name] for name in data.files}
        payload.pop("dba_gpu")
        np.savez(path, **payload)
        errors = checker.check_series(path)
        assert any("dba_gpu" in e for e in errors)

    def test_series_ragged_columns(self, checker, tmp_path):
        path = _series(tmp_path)
        with np.load(path, allow_pickle=False) as data:
            payload = {name: data[name] for name in data.files}
        payload["cycle"] = payload["cycle"][:0]
        np.savez(path, **payload)
        assert any("ragged" in e for e in checker.check_series(path))


class TestTruncationWarnings:
    def _truncated(self, artifacts):
        jsonl, _ = artifacts
        lines = jsonl.read_text().splitlines()
        header = json.loads(lines[0])
        header["trace"] = {
            "buffered": 2,
            "dropped_sampling": 0,
            "dropped_overflow": 17,
        }
        lines[0] = json.dumps(header)
        jsonl.write_text("\n".join(lines) + "\n")
        return jsonl

    def test_overflow_warns_but_still_valid(self, checker, artifacts):
        jsonl = self._truncated(artifacts)
        assert checker.check_jsonl(jsonl) == []
        warnings = checker.jsonl_warnings(jsonl)
        assert len(warnings) == 1
        assert "truncated" in warnings[0]
        assert "17" in warnings[0]

    def test_main_warns_on_stderr_exit_zero(
        self, checker, artifacts, capsys
    ):
        jsonl = self._truncated(artifacts)
        assert checker.main([str(jsonl)]) == 0
        captured = capsys.readouterr()
        assert "WARNING" in captured.err
        assert "valid" in captured.out

    def test_clean_export_does_not_warn(self, checker, artifacts):
        jsonl, _ = artifacts
        assert checker.jsonl_warnings(jsonl) == []
