"""scripts/check_trace.py validates what the exporters emit."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.obs.export import write_trace_artifacts
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import EventTracer

SCRIPT = (
    Path(__file__).resolve().parents[2] / "scripts" / "check_trace.py"
)


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location("check_trace", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture
def artifacts(tmp_path):
    registry = MetricsRegistry()
    registry.counter("noc/windows").inc(2)
    registry.gauge("noc/backlog").set(1)
    registry.histogram("ml/error").observe(0.1)
    tracer = EventTracer()
    tracer.instant("window_close", "noc", ts=500)
    with tracer.wall_span("sim/measure", "sim"):
        pass
    return write_trace_artifacts(
        tmp_path / "run", registry, tracer, {"seed": 1}
    )


class TestAcceptsRealArtifacts:
    def test_jsonl_valid(self, checker, artifacts):
        jsonl, _ = artifacts
        assert checker.check_jsonl(jsonl) == []

    def test_chrome_valid(self, checker, artifacts):
        _, chrome = artifacts
        assert checker.check_chrome(chrome) == []

    def test_main_accepts_stem(self, checker, artifacts, capsys):
        jsonl, _ = artifacts
        stem = str(jsonl)[: -len(".jsonl")]
        assert checker.main([stem]) == 0


class TestRejectsBrokenArtifacts:
    def test_missing_header(self, checker, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"type": "metric", "name": "x"}) + "\n")
        assert checker.check_jsonl(path)

    def test_wrong_schema(self, checker, artifacts):
        jsonl, _ = artifacts
        lines = jsonl.read_text().splitlines()
        header = json.loads(lines[0])
        header["schema"] = "pearl-obs-0"
        lines[0] = json.dumps(header)
        jsonl.write_text("\n".join(lines) + "\n")
        assert any("schema" in e for e in checker.check_jsonl(jsonl))

    def test_metric_missing_field(self, checker, tmp_path):
        path = tmp_path / "bad.jsonl"
        records = [
            {"type": "provenance", "schema": "pearl-obs-1", "provenance": {}},
            {"type": "metric", "name": "x", "kind": "histogram"},
        ]
        path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        errors = checker.check_jsonl(path)
        assert any("missing 'bounds'" in e for e in errors)

    def test_truncated_json_line(self, checker, artifacts):
        jsonl, _ = artifacts
        jsonl.write_text(jsonl.read_text() + "{ truncated\n")
        assert any("invalid JSON" in e for e in checker.check_jsonl(jsonl))

    def test_chrome_span_without_duration(self, checker, tmp_path):
        path = tmp_path / "bad.trace.json"
        path.write_text(
            json.dumps(
                {
                    "traceEvents": [
                        {
                            "ph": "X",
                            "name": "n",
                            "pid": 1,
                            "tid": 1,
                            "ts": 0,
                        }
                    ]
                }
            )
        )
        assert any("dur" in e for e in checker.check_chrome(path))

    def test_main_exit_code(self, checker, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        assert checker.main([str(path)]) == 1
