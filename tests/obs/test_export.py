"""Exporters: path resolution, JSONL records, Chrome trace docs."""

import json
from pathlib import Path

from repro.obs.export import (
    JSONL_SCHEMA,
    WALL_STREAM,
    chrome_trace_doc,
    jsonl_records,
    trace_paths,
    write_trace_artifacts,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import EventTracer, TraceEvent


class TestTracePaths:
    def test_bare_stem(self):
        jsonl, chrome = trace_paths("out/run")
        assert jsonl == Path("out/run.jsonl")
        assert chrome == Path("out/run.trace.json")

    def test_suffixes_normalise_to_same_pair(self):
        spellings = ["run", "run.jsonl", "run.json", "run.trace.json"]
        pairs = {trace_paths(s) for s in spellings}
        assert len(pairs) == 1

    def test_empty_stem_defaults(self):
        jsonl, _ = trace_paths(".jsonl")
        assert jsonl.name == "trace.jsonl"


def _populated():
    registry = MetricsRegistry()
    registry.counter("noc/windows").inc(3)
    registry.histogram("noc/occupancy").observe(0.4)
    tracer = EventTracer()
    tracer.instant("window_close", "noc", ts=500, router=1)
    tracer.span("burst", "noc", ts=600, duration=50)
    with tracer.wall_span("sim/measure", "sim"):
        pass
    return registry, tracer


class TestJsonl:
    def test_header_first_then_metrics_then_events(self):
        registry, tracer = _populated()
        records = jsonl_records(registry, tracer, {"seed": 7})
        assert records[0]["type"] == "provenance"
        assert records[0]["schema"] == JSONL_SCHEMA
        assert records[0]["provenance"] == {"seed": 7}
        types = [r["type"] for r in records[1:]]
        assert types == ["metric"] * 2 + ["event"] * 3

    def test_records_are_json_serialisable(self):
        registry, tracer = _populated()
        for record in jsonl_records(registry, tracer):
            json.dumps(record)


class TestChromeDoc:
    def test_metadata_names_streams_and_categories(self):
        _, tracer = _populated()
        doc = chrome_trace_doc(tracer.events())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        process_names = {
            e["args"]["name"] for e in meta if e["name"] == "process_name"
        }
        assert process_names == {"main", WALL_STREAM}

    def test_span_and_instant_phases(self):
        _, tracer = _populated()
        doc = chrome_trace_doc(tracer.events())
        phases = [e["ph"] for e in doc["traceEvents"] if e["ph"] != "M"]
        assert sorted(phases) == ["X", "X", "i"]

    def test_wall_spans_scaled_to_microseconds(self):
        tracer = EventTracer()
        events = [
            TraceEvent(
                name="phase", category="sim", ts=1.5, duration=0.25, wall=True
            )
        ]
        doc = chrome_trace_doc(events)
        (span,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert span["ts"] == 1.5e6
        assert span["dur"] == 0.25e6
        del tracer

    def test_provenance_embedded(self):
        doc = chrome_trace_doc([], provenance={"seed": 3})
        assert doc["otherData"] == {"seed": 3}


class TestArtifacts:
    def test_write_both_artifacts(self, tmp_path):
        registry, tracer = _populated()
        jsonl, chrome = write_trace_artifacts(
            tmp_path / "run", registry, tracer, {"seed": 1}
        )
        lines = [json.loads(l) for l in jsonl.read_text().splitlines()]
        assert lines[0]["schema"] == JSONL_SCHEMA
        doc = json.loads(chrome.read_text())
        assert isinstance(doc["traceEvents"], list)
        assert doc["otherData"] == {"seed": 1}
