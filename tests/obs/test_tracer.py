"""Event tracer: ring buffer, sampling, wall spans, merging."""

import pytest

from repro.obs.tracer import EventTracer, TraceEvent


class TestTraceEvent:
    def test_roundtrip(self):
        event = TraceEvent(
            name="n", category="c", ts=3.0, duration=2.0, args={"k": 1}
        )
        rebuilt = TraceEvent.from_dict(event.to_dict())
        assert rebuilt == event

    def test_instant_has_no_dur_key(self):
        event = TraceEvent(name="n", category="c", ts=1.0)
        assert not event.is_span
        assert "dur" not in event.to_dict()


class TestRingBuffer:
    def test_capacity_evicts_oldest(self):
        tracer = EventTracer(capacity=3)
        for i in range(5):
            tracer.instant(f"e{i}", "cat", ts=i)
        names = [e.name for e in tracer.events()]
        assert names == ["e2", "e3", "e4"]
        assert tracer.dropped == 2

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            EventTracer(capacity=0)

    def test_seq_monotonic(self):
        tracer = EventTracer()
        for i in range(4):
            tracer.instant("e", "cat", ts=i)
        seqs = [e.seq for e in tracer.events()]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 4

    def test_reset(self):
        tracer = EventTracer()
        tracer.instant("e", "cat", ts=0)
        tracer.reset()
        assert len(tracer) == 0
        assert tracer.dropped == 0


class TestSampling:
    def test_keeps_every_nth_per_name(self):
        tracer = EventTracer(sample_every=3)
        for i in range(9):
            tracer.instant("chatty", "cat", ts=i)
        kept = [e.ts for e in tracer.events()]
        assert kept == [0.0, 3.0, 6.0]
        assert tracer.dropped == 6

    def test_rare_events_survive_alongside_chatty_ones(self):
        tracer = EventTracer(sample_every=10)
        for i in range(20):
            tracer.instant("chatty", "cat", ts=i)
        tracer.instant("rare", "cat", ts=99)
        names = [e.name for e in tracer.events()]
        assert "rare" in names

    def test_deterministic(self):
        def record():
            tracer = EventTracer(sample_every=4)
            for i in range(17):
                tracer.instant("e", "cat", ts=i, index=i)
            return [(e.name, e.ts) for e in tracer.events()]

        assert record() == record()

    def test_sample_every_validated(self):
        with pytest.raises(ValueError):
            EventTracer(sample_every=0)


class TestSpans:
    def test_span_records_duration(self):
        tracer = EventTracer()
        tracer.span("window", "noc", ts=500, duration=500, router=3)
        (event,) = tracer.events()
        assert event.is_span
        assert event.duration == 500
        assert event.args == {"router": 3}

    def test_wall_span_marked_wall(self):
        tracer = EventTracer()
        with tracer.wall_span("phase", "sim"):
            pass
        (event,) = tracer.events()
        assert event.wall
        assert event.duration >= 0.0

    def test_wall_span_recorded_on_raise(self):
        tracer = EventTracer()
        with pytest.raises(RuntimeError):
            with tracer.wall_span("phase", "sim"):
                raise RuntimeError("boom")
        assert [e.name for e in tracer.events()] == ["phase"]

    def test_events_can_exclude_wall(self):
        tracer = EventTracer()
        tracer.instant("sim_event", "noc", ts=1)
        with tracer.wall_span("phase", "sim"):
            pass
        assert len(tracer.events(include_wall=True)) == 2
        assert [e.name for e in tracer.events(include_wall=False)] == [
            "sim_event"
        ]


class TestMerge:
    def test_merge_reassigns_stream_and_seq(self):
        workers = []
        for _ in range(3):
            tracer = EventTracer()
            for i in range(4):
                tracer.instant("e", "cat", ts=i)
            workers.append(tracer.snapshot())

        parent = EventTracer()
        parent.instant("local", "cat", ts=0)
        for index, snap in enumerate(workers):
            parent.merge_snapshot(snap, stream=f"job{index}")

        keys = [(e.stream, e.seq) for e in parent.events()]
        assert len(keys) == len(set(keys)) == 13
        assert {e.stream for e in parent.events()} == {
            "main",
            "job0",
            "job1",
            "job2",
        }

    def test_merge_respects_capacity(self):
        parent = EventTracer(capacity=2)
        child = EventTracer()
        for i in range(5):
            child.instant("e", "cat", ts=i)
        parent.merge_snapshot(child.snapshot(), stream="job0")
        assert len(parent) == 2
        assert parent.dropped == 3
