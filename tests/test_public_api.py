"""Public-API contract tests: everything advertised imports and works."""

import importlib

import pytest

import repro


class TestTopLevelApi:
    def test_version(self):
        assert repro.__version__ == "1.1.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.cache",
            "repro.config",
            "repro.config_io",
            "repro.core",
            "repro.cores",
            "repro.experiments",
            "repro.ml",
            "repro.noc",
            "repro.power",
            "repro.traffic",
            "repro.viz",
        ],
    )
    def test_subpackages_import(self, module):
        imported = importlib.import_module(module)
        assert imported is not None

    @pytest.mark.parametrize(
        "module",
        [
            "repro.cache",
            "repro.core",
            "repro.cores",
            "repro.ml",
            "repro.noc",
            "repro.power",
            "repro.traffic",
            "repro.viz",
        ],
    )
    def test_subpackage_all_exports_resolve(self, module):
        imported = importlib.import_module(module)
        for name in imported.__all__:
            assert hasattr(imported, name), f"{module}.{name}"

    def test_quickstart_docstring_code_runs(self):
        """The README/module quickstart snippet stays valid."""
        from repro import PearlConfig, PearlNetwork, PowerPolicyKind
        from repro.config import SimulationConfig
        from repro.traffic import generate_pair_trace, get_benchmark

        config = PearlConfig(
            simulation=SimulationConfig(warmup_cycles=50, measure_cycles=400)
        )
        trace = generate_pair_trace(
            get_benchmark("fluidanimate"),
            get_benchmark("dct"),
            config.architecture,
            duration=config.simulation.total_cycles,
        )
        network = PearlNetwork(
            config, power_policy=PowerPolicyKind.REACTIVE
        )
        result = network.run(trace)
        assert result.throughput() >= 0.0
        assert result.mean_laser_power_w > 0.0

    def test_cli_entry_point_exists(self):
        from repro.cli import main

        assert callable(main)

    def test_experiment_registry_complete(self):
        from repro.experiments import REGISTRY

        for fig in ("fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
                    "fig10", "fig11"):
            assert fig in REGISTRY
        for table in ("table1", "table2", "table5"):
            assert table in REGISTRY
