"""Characterise the synthetic workloads (the Fig. 4 backdrop).

Quantifies the paper's premises on the generated traces: CPU
benchmarks produce more packets overall, while GPU traffic is far
burstier per router (kernel-driven). Prints per-pair packet splits,
per-core-type burstiness metrics and a sparkline of the chip-wide
injection rate over time.

Run with:  python examples/workload_characterization.py
"""

from repro.noc.packet import CoreType
from repro.traffic import (
    compare_core_types,
    generate_pair_trace,
    get_benchmark,
    per_source_idc,
    windowed_counts,
)
from repro.viz import sparkline

PAIRS = [
    ("fluidanimate", "dct"),
    ("fmm", "dwt_haar"),
    ("radiosity", "quasi_random"),
    ("x264", "reduction"),
]

DURATION = 30_000


def main() -> None:
    print(f"{'pair':14s} {'cpu%':>6s} {'gpu%':>6s} "
          f"{'cpu IDC/rtr':>12s} {'gpu IDC/rtr':>12s} {'gpu p2m':>8s}")
    for cpu_name, gpu_name in PAIRS:
        cpu, gpu = get_benchmark(cpu_name), get_benchmark(gpu_name)
        trace = generate_pair_trace(cpu, gpu, duration=DURATION, seed=1)
        counts = trace.packets_by_core_type()
        total = counts[CoreType.CPU] + counts[CoreType.GPU]
        characters = compare_core_types(trace, window=500)
        cpu_idc = per_source_idc(trace, core_type=CoreType.CPU)
        gpu_idc = per_source_idc(trace, core_type=CoreType.GPU)
        print(f"{trace.name:14s} "
              f"{100 * counts[CoreType.CPU] / total:6.1f} "
              f"{100 * counts[CoreType.GPU] / total:6.1f} "
              f"{cpu_idc:12.2f} {gpu_idc:12.2f} "
              f"{characters['gpu'].peak_to_mean:8.2f}")

    print("\nchip-wide injection rate over time (FA+DCT, 500-cycle bins):")
    trace = generate_pair_trace(
        get_benchmark("fluidanimate"), get_benchmark("dct"),
        duration=DURATION, seed=1,
    )
    for core_type in (CoreType.CPU, CoreType.GPU):
        counts = windowed_counts(trace, window=500, core_type=core_type)
        print(f"  {core_type.value:4s} {sparkline(counts)}")


if __name__ == "__main__":
    main()
