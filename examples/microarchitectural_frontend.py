"""Drive PEARL with the microarchitectural core models.

Instead of statistical benchmark profiles, this example generates the
NoC workload bottom-up: in-order CPU cores and SIMT GPU compute units
execute synthetic instruction streams, the NMOESI cache hierarchy
filters their accesses, and the surviving misses become the network
trace.  The trace then runs on both PEARL's R-SWMR crossbar and the
token-MWSR alternative (Corona-style) from the related work.

Run with:  python examples/microarchitectural_frontend.py
"""

from repro import PearlConfig, PearlNetwork, SimulationConfig
from repro.config import ArchitectureConfig
from repro.cores import ChipModel, GpuParams
from repro.noc.mwsr import MwsrNetwork


def main() -> None:
    architecture = ArchitectureConfig()
    config = PearlConfig(
        architecture=architecture,
        simulation=SimulationConfig(warmup_cycles=500, measure_cycles=5_000),
    )

    print("running core models over the NMOESI hierarchy...")
    chip = ChipModel(
        architecture,
        gpu_params=GpuParams(
            kernel_gap_cycles=15_000.0,
            wavefronts_per_kernel=4,
            accesses_per_wavefront=16,
            issue_per_cycle=1,
        ),
        seed=11,
    )
    trace = chip.run(config.simulation.total_cycles)
    stats = chip.cache_stats()
    print(f"trace: {len(trace)} events")
    print(f"cache miss rates: "
          f"CPU L1D {stats['cpu_l1d_miss_rate']:.1%}, "
          f"CPU L2 {stats['cpu_l2_miss_rate']:.1%}, "
          f"GPU L2 {stats['gpu_l2_miss_rate']:.1%}")

    print("\nsimulating both crossbars on the same trace...")
    pearl = PearlNetwork(config, seed=11).run(trace)
    mwsr_net = MwsrNetwork(config, seed=11)
    mwsr = mwsr_net.run(trace)

    print(f"{'metric':28s} {'R-SWMR (PEARL)':>15s} {'token-MWSR':>12s}")
    print(f"{'throughput (flits/cycle)':28s} "
          f"{pearl.throughput():>15.2f} "
          f"{mwsr.throughput_flits_per_cycle():>12.2f}")
    print(f"{'mean latency (cycles)':28s} "
          f"{pearl.stats.mean_latency():>15.1f} "
          f"{mwsr.mean_latency():>12.1f}")
    print(f"\ntoken-wait events on the MWSR channels: "
          f"{mwsr_net.total_token_waits()}")


if __name__ == "__main__":
    main()
