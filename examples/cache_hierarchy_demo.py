"""Drive the NMOESI cache hierarchy directly and trace its NoC traffic.

Shows the substrate below the synthetic traces: a set-associative
L1/L2/L3 hierarchy kept coherent with the NMOESI protocol (as in
Multi2Sim, the paper's front-end).  The demo performs a producer/
consumer sharing pattern across two clusters, prints the coherence
actions, then generates a cache-driven NoC trace for a benchmark.

Run with:  python examples/cache_hierarchy_demo.py
"""

from repro.cache import AccessType, ChipHierarchy
from repro.config import ArchitectureConfig
from repro.noc.packet import CoreType, PacketClass
from repro.traffic import CacheTraceGenerator, get_benchmark


def coherence_walkthrough() -> None:
    chip = ChipHierarchy(ArchitectureConfig(num_clusters=4))
    address = 0x4000

    print("== producer/consumer across clusters ==")
    steps = [
        ("cluster 0 CPU stores (producer)", 0, AccessType.STORE),
        ("cluster 1 CPU loads (consumer)", 1, AccessType.LOAD),
        ("cluster 1 CPU stores (takes ownership)", 1, AccessType.STORE),
        ("cluster 0 CPU loads again", 0, AccessType.LOAD),
    ]
    for label, cluster, access in steps:
        outcome = chip.cluster(cluster).access(
            address, CoreType.CPU, access_type=access
        )
        print(f"{label:42s} hit_level={outcome.hit_level:3s} "
              f"traffic={[t.value for t in outcome.traffic]}")

    print("\nL2 states after the exchange:")
    for cluster in range(2):
        state = chip.cluster(cluster).cpu_l2.state_of(address)
        print(f"  cluster {cluster} CPU L2: {state.name}")


def cache_driven_trace() -> None:
    print("\n== cache-driven NoC trace (matrix_mult on the GPUs) ==")
    generator = CacheTraceGenerator(ArchitectureConfig())
    trace = generator.generate(
        get_benchmark("matrix_mult"), duration=5_000, seed=1
    )
    requests = sum(
        1 for e in trace if e.packet_class is PacketClass.REQUEST
    )
    writebacks = len(trace) - requests
    local = sum(1 for e in trace if e.source == e.destination)
    print(f"events: {len(trace)} ({requests} requests, "
          f"{writebacks} writebacks, {local} intra-cluster)")
    to_l3 = sum(1 for e in trace if e.destination == 16)
    print(f"L3-bound: {to_l3} ({to_l3 / max(len(trace), 1):.0%})")


def main() -> None:
    coherence_walkthrough()
    cache_driven_trace()


if __name__ == "__main__":
    main()
