"""DBA fairness under GPU flooding (the paper's Sec. III-B motivation).

GPUs flood the network with bursty memory traffic; without demand-aware
bandwidth allocation the latency-sensitive CPU traffic queues behind
it.  This example drives PEARL with a hotspot-heavy GPU benchmark
paired with a steady CPU benchmark and compares CPU packet latency
under dynamic bandwidth allocation vs the static FCFS split, at a
constrained wavelength state where the link is the bottleneck.

Run with:  python examples/gpu_flood_fairness.py
"""

from repro import CoreType, PearlConfig, PearlNetwork, SimulationConfig
from repro.traffic import generate_pair_trace, get_benchmark

#: A constrained state makes the allocation decision matter.
WAVELENGTHS = 16


def run(use_dba: bool, config: PearlConfig, trace) -> dict:
    network = PearlNetwork(
        config,
        use_dynamic_bandwidth=use_dba,
        static_state=WAVELENGTHS,
    )
    result = network.run(trace)
    return {
        "throughput": result.throughput(),
        "cpu_latency": result.stats.counters[CoreType.CPU].mean_latency,
        "gpu_latency": result.stats.counters[CoreType.GPU].mean_latency,
        "p99_latency": result.stats.latency_percentile(99),
        "cpu_delivered": result.stats.counters[CoreType.CPU].packets_delivered,
    }


def main() -> None:
    config = PearlConfig(
        simulation=SimulationConfig(warmup_cycles=500, measure_cycles=8_000)
    )
    # floyd_warshall is the most flooding GPU profile in the catalogue.
    trace = generate_pair_trace(
        get_benchmark("canneal"),
        get_benchmark("floyd_warshall"),
        config.architecture,
        duration=config.simulation.total_cycles,
        seed=3,
    )

    dyn = run(True, config, trace)
    fcfs = run(False, config, trace)

    print(f"constrained link: {WAVELENGTHS} wavelengths")
    print(f"{'metric':24s} {'PEARL-Dyn':>12s} {'PEARL-FCFS':>12s}")
    for key in (
        "throughput",
        "cpu_latency",
        "gpu_latency",
        "p99_latency",
        "cpu_delivered",
    ):
        print(f"{key:24s} {dyn[key]:12.2f} {fcfs[key]:12.2f}")

    speedup = fcfs["cpu_latency"] / dyn["cpu_latency"]
    print(f"\nCPU latency improvement from DBA: {speedup:.2f}x")


if __name__ == "__main__":
    main()
