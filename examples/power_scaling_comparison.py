"""Compare PEARL's three power strategies on one workload pair.

Reproduces the core trade-off of the paper at example scale: the
always-on 64-wavelength baseline, the reactive buffer-occupancy scaler
(Algorithm 1 steps 6-8) and the proactive ridge-regression scaler, all
on the x264+Reduction test pair.

Run with:  python examples/power_scaling_comparison.py
(the ML row trains a quick model first; expect ~a minute)
"""

from repro import PearlConfig, PearlNetwork, PowerPolicyKind, SimulationConfig
from repro.ml.pipeline import train_default_model
from repro.traffic import generate_pair_trace, get_benchmark

WINDOW = 500


def main() -> None:
    config = PearlConfig(
        simulation=SimulationConfig(warmup_cycles=500, measure_cycles=8_000)
    ).with_reservation_window(WINDOW)
    trace = generate_pair_trace(
        get_benchmark("x264"),
        get_benchmark("reduction"),
        config.architecture,
        duration=config.simulation.total_cycles,
        seed=1,
    )

    print("training the ridge model (quick pipeline)...")
    model = train_default_model(WINDOW, quick=True).model

    runs = {
        "64WL always-on": PearlNetwork(config),
        f"Dyn RW{WINDOW} (reactive)": PearlNetwork(
            config, power_policy=PowerPolicyKind.REACTIVE
        ),
        f"ML RW{WINDOW} (proactive)": PearlNetwork(
            config, power_policy=PowerPolicyKind.ML, ml_model=model
        ),
    }

    baseline = None
    print(f"\n{'configuration':28s} {'thr (f/c)':>10s} {'laser (W)':>10s} "
          f"{'loss':>7s} {'savings':>8s}")
    for label, network in runs.items():
        result = network.run(trace)
        throughput = result.throughput()
        power = result.mean_laser_power_w
        if baseline is None:
            baseline = (throughput, power)
            loss = savings = 0.0
        else:
            loss = 1 - throughput / baseline[0]
            savings = 1 - power / baseline[1]
        print(f"{label:28s} {throughput:10.2f} {power:10.2f} "
              f"{loss:7.1%} {savings:8.1%}")
        residency = {s: f"{f:.0%}" for s, f in result.state_residency.items()}
        print(f"{'':28s} state residency: {residency}")


if __name__ == "__main__":
    main()
