"""Train the proactive power-scaling model through the full pipeline.

Walks the paper's Sec. IV-A protocol explicitly: phase-1 collection
with random wavelength states, lambda selection on the validation
pairs, phase-2 collection with model-driven states, retraining and
final NRMSE scoring — then deploys the model on an unseen test pair.

Run with:  python examples/train_power_model.py   (takes a few minutes)
"""

import numpy as np

from repro import PearlConfig, PearlNetwork, PowerPolicyKind, SimulationConfig
from repro.ml.metrics import nrmse
from repro.ml.pipeline import PowerModelTrainer
from repro.traffic import generate_pair_trace, get_benchmark

WINDOW = 500


def main() -> None:
    config = PearlConfig(
        simulation=SimulationConfig(warmup_cycles=500, measure_cycles=6_000)
    ).with_reservation_window(WINDOW)

    trainer = PowerModelTrainer(config=config, quick=True, seed=2018)
    print(f"training pairs: "
          f"{[f'{c.abbreviation}+{g.abbreviation}' for c, g in trainer.train_pairs]}")
    print(f"validation pairs: "
          f"{[f'{c.abbreviation}+{g.abbreviation}' for c, g in trainer.val_pairs]}")

    result = trainer.train()
    for line in result.history:
        print("  " + line)
    print(f"selected lambda: {result.lam}")
    print(f"validation NRMSE: {result.validation_nrmse:.3f} "
          f"(paper: 0.79 at RW500)")

    # Deploy on an unseen Table IV test pair.
    trace = generate_pair_trace(
        get_benchmark("radiosity"),
        get_benchmark("quasi_random"),
        config.architecture,
        duration=config.simulation.total_cycles,
        seed=7,
    )
    network = PearlNetwork(
        config, power_policy=PowerPolicyKind.ML, ml_model=result.model
    )
    run = network.run(trace)
    targets = np.asarray(run.ml_labels)
    predictions = np.asarray(run.ml_predictions)
    print(f"\ntest pair Rad+QRS: test NRMSE {nrmse(targets, predictions):.3f} "
          f"(paper: 0.68 at RW500)")
    print(f"laser power: {run.mean_laser_power_w:.2f} W "
          f"(64WL always-on would be {24 * 1.16:.2f} W)")


if __name__ == "__main__":
    main()
