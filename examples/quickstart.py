"""Quickstart: simulate one heterogeneous workload pair on PEARL.

Runs the paper's FA+DCT test pair (Fluid Animate on the CPUs, Discrete
Cosine Transform on the GPUs) through the PEARL photonic NoC with
dynamic bandwidth allocation, and prints the headline metrics.

Run with:  python examples/quickstart.py
"""

from repro import PearlConfig, PearlNetwork, PowerPolicyKind, SimulationConfig
from repro.traffic import generate_pair_trace, get_benchmark


def main() -> None:
    config = PearlConfig(
        simulation=SimulationConfig(warmup_cycles=500, measure_cycles=8_000)
    )

    # Traces carry core-generated requests; responses (L3, peer-cluster
    # and local L2) are generated closed-loop by the simulator.
    trace = generate_pair_trace(
        get_benchmark("fluidanimate"),
        get_benchmark("dct"),
        config.architecture,
        duration=config.simulation.total_cycles,
        seed=1,
    )
    print(f"workload: {trace.name} ({len(trace)} injected requests)")

    network = PearlNetwork(config, power_policy=PowerPolicyKind.STATIC)
    result = network.run(trace)

    stats = result.stats
    print(f"throughput: {stats.throughput_flits_per_cycle():.2f} flits/cycle "
          f"({stats.throughput_gbps():.0f} Gb/s)")
    print(f"mean packet latency: {stats.mean_latency():.1f} cycles")
    print(f"link utilization: {stats.link_utilization():.1%}")
    print(f"laser power: {result.mean_laser_power_w:.2f} W")
    print(f"energy per bit: {stats.energy_per_bit_pj():.2f} pJ")


if __name__ == "__main__":
    main()
