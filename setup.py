"""Setup shim for environments without the `wheel` package.

`pip install -e .` needs to build a PEP-660 wheel, which requires the
`wheel` distribution; this offline environment lacks it, so
`python setup.py develop` provides the fallback editable install.
Configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
